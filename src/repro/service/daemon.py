"""Merge-as-a-service: the warm-engine daemon.

Every ``compile_module`` call in a cold process pays the same fixed costs
before the first alignment runs: spawn a fresh worker pool (the
``"process"`` executor forks on first dispatch), load the alignment-cache
snapshot, build the merge pass and its searcher.  For edit-recompile
traffic - many small requests against similar modules - those costs
dominate (the compile-time setting of the paper's Figs. 12-13).  The
daemon hoists all of them into one long-lived **warm engine context**:

* a **persistent worker pool**: one keep-alive
  :class:`~repro.core.engine.offload.ProcessExecutor` (or thread/serial
  equivalent), *leased* to every request and surviving each run's
  end-of-run :meth:`~repro.core.engine.scheduler.PlanExecutor.release`;
  failure paths still close the pool for real, and the next lease detects
  ``closed`` and rebuilds - that is the pool-recycling story for killed
  workers;
* a **resident** :class:`~repro.core.engine.AlignmentCache`: snapshot
  loaded once at boot, never cleared between requests
  (``alignment_cache_resident=True``), persisted by debounced autosaves
  and a final save on shutdown;
* **warm merge passes**: one :class:`FunctionMergingPass` per distinct
  option signature, constructed once and reused (warm requests skip pass +
  searcher construction entirely);
* a **result cache**: module payloads are regenerative (the payload
  rebuilds a bit-identical module) and merge decisions deterministic, so a
  compile response is a pure function of ``(module payload, options)`` -
  identical requests are answered from an LRU of recorded responses
  (``result_cache_size``) without touching the engine, the ccache tier
  above the engine-level warmth and the daemon's headline latency win.

Concurrency: requests are served by :class:`ThreadingHTTPServer` (thread
per connection) behind a bounded admission semaphore - when
``queue_limit`` requests are already in flight, new work is rejected with
``busy`` (HTTP 429) instead of queueing unboundedly.  ``compile_module``
requests serialize on the warm context's engine lock (one engine, one run
at a time); sessions each own their engine and serialize only per session,
so concurrent clients can drive separate sessions in parallel.  All of
them share the leased pool (``ProcessPoolExecutor`` submits are
thread-safe) and the thread-safe resident cache.

Decisions are bit-identical to the daemon-less path by construction: the
daemon routes through the very same :func:`repro.evaluation.pipeline
.compile_module` / :func:`open_compile_session` code, merely injecting its
warm pass / resident cache / leased executor through their seams - there
is no second merge path to diverge.
"""

from __future__ import annotations

import json
import os
import socket
import threading
import time
import uuid
from collections import OrderedDict
from dataclasses import dataclass, field
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, Optional, Tuple

from ..analysis.sanitizer import Sanitizer
from ..core.codegen import MergeOptions
from ..core.engine import AlignmentCache, PlanningError, make_executor
from ..core.pass_ import FunctionMergingPass
from ..evaluation.pipeline import compile_module, open_compile_session
from ..resilience import CLOSED, CircuitBreaker, degradation_event, fault_triggered
from . import protocol
from .protocol import ProtocolError

#: Options a request's ``options`` object may set, with defaults.  The
#: tuple of values (in this order) keys the warm-pass cache.
REQUEST_OPTIONS = (
    ("technique", "fmsa"),
    ("threshold", 1),
    ("oracle", False),
    ("run_identical_first", True),
)


@dataclass
class DaemonConfig:
    """Knobs of one daemon instance (see ``repro-served --help``)."""

    host: str = "127.0.0.1"
    port: int = 0                     # 0: ephemeral, read MergeDaemon.address
    unix_socket: Optional[str] = None  # unix path instead of TCP
    executor: str = "auto"            # plan executor kind for all requests
    jobs: Optional[int] = None        # worker count (None: engine default)
    worker_kernel: str = "auto"       # process-pool alignment kernel
    queue_limit: int = 8              # in-flight work requests before 429
    max_sessions: int = 32            # concurrent open sessions before 429
    session_ttl: float = 300.0        # idle seconds before eviction
    tick_seconds: float = 1.0         # eviction/autosave ticker period
    recycle_after: int = 0            # recycle pool after N requests (0: off)
    max_payload_bytes: int = protocol.DEFAULT_MAX_PAYLOAD_BYTES
    alignment_cache_path: Optional[str] = None  # resident snapshot file
    cache_capacity: int = 65536
    result_cache_size: int = 64       # memoized compile responses (0: off)
    autosave_every_puts: int = 256
    autosave_interval: float = 30.0
    target: str = "x86-64"
    #: Run the static-analysis sanitizer (verifier v2 + merge linter) on
    #: every warm pass and session; violations are *recorded* (not raised)
    #: and surface as ``sanitize_*`` counters in the ``stats`` response so
    #: deployments can alert on them.  ``None``: the ``REPRO_SANITIZE``
    #: environment variable.
    sanitize: Optional[bool] = None
    #: Per-request socket timeout (seconds): a client that stalls sending
    #: its body or reading its response is dropped - its handler thread is
    #: reclaimed - and counted in the ``request_timeouts`` stat.  0: off.
    request_timeout: float = 30.0
    #: Circuit breaker: after this many *consecutive* internal failures the
    #: daemon sheds work requests with ``unavailable`` (503 + Retry-After)
    #: instead of burning worker slots, admitting one probe per
    #: ``breaker_reset_seconds`` window until a probe succeeds.  0: off.
    breaker_threshold: int = 3
    breaker_reset_seconds: float = 5.0
    #: Executor degradation ladder: after this many consecutive worker-pool
    #: failures the warm context steps the executor down one tier
    #: (process -> thread -> serial) instead of rebuilding the same broken
    #: pool forever; a successful request resets the count.  0: off.
    degrade_after_failures: int = 3


class WarmContext:
    """The daemon's warm engine state: resident cache, leased keep-alive
    executor, warm merge passes, and the counters behind ``/stats``."""

    def __init__(self, config: DaemonConfig):
        self.config = config
        self._lock = threading.Lock()
        self.cache = AlignmentCache(capacity=config.cache_capacity)
        self.cache_load_seconds = 0.0
        self.loaded_entries = 0
        if config.alignment_cache_path:
            start = time.perf_counter()
            self.loaded_entries = self.cache.load(config.alignment_cache_path)
            self.cache_load_seconds = time.perf_counter() - start
            self.cache.enable_autosave(
                config.alignment_cache_path,
                every_puts=config.autosave_every_puts,
                interval_seconds=config.autosave_interval)
        self._executor = None
        self.pool_spawn_seconds = 0.0
        sanitize = config.sanitize
        if sanitize is None:
            sanitize = os.environ.get("REPRO_SANITIZE", "").strip().lower() \
                not in ("", "0", "false", "no", "off")
        #: One shared recording sanitizer for every warm pass and session:
        #: a violation must never kill a service request, but the counters
        #: aggregate daemon-wide and land in the ``stats`` response.
        self.sanitizer = Sanitizer(mode="record") if sanitize else None
        self._passes: Dict[tuple, FunctionMergingPass] = {}
        self.engine_lock = threading.Lock()
        self.counters: Dict[str, int] = {
            "pool_recycles": 0,
            "pool_builds": 0,
            "warm_requests": 0,
            "cold_requests": 0,
        }
        self._requests_since_recycle = 0
        self._inflight = 0
        #: Executor degradation ladder (process -> thread -> serial): the
        #: tier future leases build, stepped down by repeated worker-pool
        #: failures.  Decisions are executor-invariant, so a degraded
        #: daemon answers identically - only slower.
        self.executor_kind: str = config.executor
        self.degradations: list = []
        self._consecutive_failures = 0

    # -- executor leasing --------------------------------------------------
    def lease_executor(self):
        """A live keep-alive executor; rebuilt (and counted as a recycle)
        when a failure path closed the previous pool.  Sessions receive
        this method as their executor factory."""
        with self._lock:
            if self._executor is None or self._executor.closed:
                start = time.perf_counter()
                executor = make_executor(self.executor_kind,
                                         self._resolve_jobs())
                # keep_alive is an attribute contract on PlanExecutor, so a
                # post-construction set covers every executor kind alike
                executor.keep_alive = True
                self.pool_spawn_seconds = time.perf_counter() - start
                if self._executor is not None:
                    self.counters["pool_recycles"] += 1
                self.counters["pool_builds"] += 1
                self._executor = executor
            return self._executor

    def _resolve_jobs(self) -> int:
        if self.config.jobs is not None:
            return max(1, int(self.config.jobs))
        return max(1, (os.cpu_count() or 2) - 1)

    def note_request_begin(self) -> None:
        with self._lock:
            self._inflight += 1

    def note_request_done(self) -> None:
        """Bookkeeping after a work request: graceful pool recycling after
        ``recycle_after`` requests, deferred while other requests are still
        in flight (a recycle closes the shared pool; the next lease
        rebuilds it)."""
        recycle = self.config.recycle_after
        with self._lock:
            self._inflight -= 1
            self._requests_since_recycle += 1
            if (recycle > 0 and self._inflight == 0
                    and self._requests_since_recycle >= recycle):
                self._requests_since_recycle = 0
                if self._executor is not None and not self._executor.closed:
                    self._executor.close()

    #: Next-lower executor tier ("auto" resolves to the process pool, so
    #: it degrades the same way).
    _LADDER = {"auto": "thread", "process": "thread", "thread": "serial"}

    def note_worker_failure(self) -> None:
        """A run died on a broken pool: make sure the dead executor is
        really closed so the next lease rebuilds it, and - after
        ``degrade_after_failures`` consecutive failures - step the ladder
        down one tier rather than rebuild the same broken pool forever."""
        with self._lock:
            if self._executor is not None and not self._executor.closed:
                self._executor.close()
            self._consecutive_failures += 1
            limit = self.config.degrade_after_failures
            if limit <= 0 or self._consecutive_failures < limit:
                return
            lower = self._LADDER.get(self.executor_kind)
            if lower is None:  # already at the bottom (serial)
                return
            self.degradations.append(degradation_event(
                "service-executor", self.executor_kind, lower,
                f"{self._consecutive_failures} consecutive worker failures"))
            self.executor_kind = lower
            self._consecutive_failures = 0

    def note_run_success(self) -> None:
        """A work request completed: the pool is healthy, reset the
        consecutive-failure count (the ladder only reacts to streaks)."""
        with self._lock:
            self._consecutive_failures = 0

    def current_executor_kind(self) -> str:
        with self._lock:
            return self.executor_kind

    def degradation_snapshot(self) -> list:
        with self._lock:
            return list(self.degradations)

    # -- warm passes -------------------------------------------------------
    def warm_pass(self, signature: tuple) -> Tuple[bool, FunctionMergingPass]:
        """The merge pass for one option signature; ``(warm, pass)`` where
        ``warm`` says it already existed.  Built passes carry the resident
        cache and are reused for every later request with the same options
        - the searcher/stage construction cost is paid once."""
        with self._lock:
            pass_ = self._passes.get(signature)
            if pass_ is not None:
                return True, pass_
        options = dict(zip((name for name, _ in REQUEST_OPTIONS), signature))
        pass_ = FunctionMergingPass(
            exploration_threshold=options["threshold"],
            oracle=options["oracle"],
            options=MergeOptions(),
            alignment_cache=self.cache,
            alignment_cache_resident=True,
            jobs=self._resolve_jobs(),
            executor=self.config.executor,
            sanitize=self.sanitizer is not None,
            sanitizer=self.sanitizer)
        with self._lock:
            self._passes[signature] = pass_
        return False, pass_

    def executor_stats(self) -> dict:
        with self._lock:
            executor = self._executor
            kind = self.executor_kind
        stats = {"executor_live": bool(executor is not None
                                       and not executor.closed),
                 "executor_kind": kind}
        if executor is not None and hasattr(executor, "worker_pids") \
                and not executor.closed:
            try:
                stats["worker_pids"] = executor.worker_pids()
            except Exception:
                stats["worker_pids"] = []
        return stats

    def close(self) -> None:
        """Final teardown: flush the resident cache to its snapshot and
        shut the shared pool down for real."""
        if self.config.alignment_cache_path:
            self.cache.autosave_flush(force=True)
            self.cache.disable_autosave()
        with self._lock:
            if self._executor is not None and not self._executor.closed:
                self._executor.close()
            self._executor = None


@dataclass
class _SessionEntry:
    session: object
    lock: threading.Lock = field(default_factory=threading.Lock)
    created: float = field(default_factory=time.monotonic)
    last_used: float = field(default_factory=time.monotonic)


class MergeDaemon:
    """The long-lived merge service (see the module docstring).

    ``start()`` binds the socket and serves on a background thread;
    ``serve_forever()`` serves on the calling thread (the CLI path).  Both
    are shut down - final cache flush included - by ``shutdown()``.
    """

    def __init__(self, config: Optional[DaemonConfig] = None):
        self.config = config or DaemonConfig()
        self.context = WarmContext(self.config)
        self.started = time.monotonic()
        self._admission = threading.BoundedSemaphore(
            max(1, self.config.queue_limit))
        self.breaker = CircuitBreaker(
            threshold=self.config.breaker_threshold,
            reset_seconds=self.config.breaker_reset_seconds)
        self._sessions: Dict[str, _SessionEntry] = {}
        self._sessions_lock = threading.Lock()
        self._stats_lock = threading.Lock()
        self._stats: Dict[str, int] = {
            "requests_total": 0,
            "busy_rejections": 0,
            "errors": 0,
            "client_disconnects": 0,
            "sessions_opened": 0,
            "sessions_closed": 0,
            "sessions_evicted": 0,
            "result_cache_hits": 0,
            "request_timeouts": 0,
            "breaker_rejections": 0,
        }
        self._result_cache: "OrderedDict[str, dict]" = OrderedDict()
        self._result_cache_lock = threading.Lock()
        for method in protocol.METHODS:
            self._stats[f"requests_{method}"] = 0
        self._server = self._build_server()
        self._serve_thread: Optional[threading.Thread] = None
        self._ticker: Optional[threading.Thread] = None
        self._stopping = threading.Event()

    # -- server plumbing ---------------------------------------------------
    def _build_server(self):
        handler = _make_handler(self)
        if self.config.unix_socket:
            path = self.config.unix_socket

            class UnixHTTPServer(ThreadingHTTPServer):
                address_family = socket.AF_UNIX
                daemon_threads = True

                def server_bind(self):
                    try:
                        os.unlink(path)
                    except OSError:
                        pass
                    self.socket.bind(path)

                def get_request(self):
                    request, _ = self.socket.accept()
                    # handlers expect a (host, port)-shaped client address
                    return request, ("local", 0)

            return UnixHTTPServer(path, handler)
        server = ThreadingHTTPServer((self.config.host, self.config.port),
                                     handler)
        server.daemon_threads = True
        return server

    @property
    def address(self) -> str:
        """Connectable address: ``host:port`` or the unix-socket path."""
        if self.config.unix_socket:
            return self.config.unix_socket
        host, port = self._server.server_address[:2]
        return f"{host}:{port}"

    def start(self) -> "MergeDaemon":
        self._serve_thread = threading.Thread(
            target=self._server.serve_forever, kwargs={"poll_interval": 0.1},
            name="merge-daemon", daemon=True)
        self._serve_thread.start()
        self._start_ticker()
        return self

    def serve_forever(self) -> None:
        self._start_ticker()
        try:
            self._server.serve_forever(poll_interval=0.1)
        finally:
            self.shutdown()

    def _start_ticker(self) -> None:
        if self._ticker is not None:
            return
        self._ticker = threading.Thread(target=self._tick_loop,
                                        name="merge-daemon-ticker",
                                        daemon=True)
        self._ticker.start()

    def _tick_loop(self) -> None:
        """Background housekeeping: idle-session eviction and time-based
        cache autosave flushes."""
        while not self._stopping.wait(self.config.tick_seconds):
            self._evict_idle_sessions()
            self.context.cache.autosave_flush()

    def _evict_idle_sessions(self) -> None:
        horizon = time.monotonic() - self.config.session_ttl
        stale = []
        with self._sessions_lock:
            for sid, entry in list(self._sessions.items()):
                if entry.last_used < horizon:
                    stale.append((sid, self._sessions.pop(sid)))
        for _, entry in stale:
            with entry.lock:  # let an in-flight update finish first
                entry.session.close()
        if stale:
            with self._stats_lock:
                self._stats["sessions_evicted"] += len(stale)

    def shutdown(self) -> None:
        if self._stopping.is_set():
            return
        self._stopping.set()
        self._server.shutdown()
        self._server.server_close()
        if self._serve_thread is not None:
            self._serve_thread.join(timeout=5)
        with self._sessions_lock:
            sessions = list(self._sessions.values())
            self._sessions.clear()
        for entry in sessions:
            with entry.lock:
                entry.session.close()
        self.context.close()
        if self.config.unix_socket:
            try:
                os.unlink(self.config.unix_socket)
            except OSError:
                pass

    # -- request handling --------------------------------------------------
    def handle(self, method: str, payload: dict) -> dict:
        """Dispatch one parsed request; raises :class:`ProtocolError` for
        everything the protocol can express."""
        with self._stats_lock:
            self._stats["requests_total"] += 1
            self._stats[f"requests_{method}"] += 1
        if method == "health":
            breaker_state = self.breaker.state
            return {"ok": True, "uptime_seconds":
                    round(time.monotonic() - self.started, 3),
                    "degraded": (breaker_state != CLOSED
                                 or bool(self.context.degradation_snapshot())),
                    "breaker": breaker_state,
                    "executor_kind": self.context.current_executor_kind()}
        if method == "stats":
            return self.stats()
        # work methods: circuit breaker first (shed while the engine keeps
        # failing, with a Retry-After hint), then bounded admission
        if not self.breaker.allow():
            with self._stats_lock:
                self._stats["breaker_rejections"] += 1
            raise ProtocolError(
                "unavailable",
                "circuit breaker is open after repeated internal failures; "
                "retry later", retry_after=self.breaker.retry_after())
        if not self._admission.acquire(blocking=False):
            with self._stats_lock:
                self._stats["busy_rejections"] += 1
            raise ProtocolError(
                "busy", f"daemon is at its in-flight request limit "
                f"({self.config.queue_limit}); retry later")
        self.context.note_request_begin()
        try:
            try:
                if method == "compile_module":
                    result = self._handle_compile(payload)
                elif method == "open_session":
                    result = self._handle_open_session(payload)
                elif method == "session_update":
                    result = self._handle_session_update(payload)
                elif method == "close_session":
                    result = self._handle_close_session(payload)
                else:
                    raise ProtocolError("unknown-method",
                                        f"unknown method {method!r}")
            except ProtocolError as error:
                # only the daemon's own failures trip the breaker; client
                # mistakes (bad-request, unknown-session, ...) never do
                if error.code == "internal":
                    self.breaker.record_failure()
                raise
            except Exception:
                self.breaker.record_failure()
                raise
            self.breaker.record_success()
            self.context.note_run_success()
            return result
        finally:
            self.context.note_request_done()
            self._admission.release()

    @staticmethod
    def _parse_options(payload) -> tuple:
        options = payload.get("options", {})
        if options is None:
            options = {}
        if not isinstance(options, dict):
            raise ProtocolError("bad-request", "'options' must be an object")
        unknown = set(options) - {name for name, _ in REQUEST_OPTIONS}
        if unknown:
            raise ProtocolError("bad-request",
                                f"unknown options: {sorted(unknown)}")
        signature = []
        for name, default in REQUEST_OPTIONS:
            value = options.get(name, default)
            if not isinstance(value, type(default)) \
                    or isinstance(value, bool) != isinstance(default, bool):
                raise ProtocolError("bad-request",
                                    f"option {name!r} has a bad type")
            signature.append(value)
        return tuple(signature)

    def _result_cache_key(self, module_payload, signature) -> Optional[str]:
        """Canonical key of one compile request, or None when the request
        is not memoizable.  Module payloads are *regenerative* - the same
        payload rebuilds a bit-identical module - and merge decisions are
        deterministic, so a compile response is a pure function of
        ``(module payload, options, daemon target)``: identical requests
        can be answered from memory without touching the engine at all
        (the warmest request of all)."""
        if self.config.result_cache_size <= 0:
            return None
        try:
            return json.dumps({"module": module_payload,
                               "options": list(signature)},
                              sort_keys=True, separators=(",", ":"))
        except (TypeError, ValueError):  # non-JSON payload: parse rejects it
            return None

    def _handle_compile(self, payload: dict) -> dict:
        signature = self._parse_options(payload)
        technique = signature[0]
        if technique not in ("baseline", "identical", "soa", "fmsa"):
            raise ProtocolError("bad-request",
                                f"unknown technique {technique!r}")
        started = time.perf_counter()
        module_payload = payload.get("module")
        cache_key = self._result_cache_key(module_payload, signature)
        if cache_key is not None:
            with self._result_cache_lock:
                stored = self._result_cache.get(cache_key)
                if stored is not None:
                    self._result_cache.move_to_end(cache_key)
            if stored is not None:
                with self._stats_lock:
                    self._stats["result_cache_hits"] += 1
                with self.context._lock:
                    self.context.counters["warm_requests"] += 1
                response = dict(stored)
                response["warm"] = True
                response["result_cache_hit"] = True
                return response
        for attempt in (0, 1):
            # decode fresh per attempt: a failed run leaves the module
            # partially merged, and the payload regenerates it exactly
            module = protocol.build_module(module_payload)
            decode_seconds = time.perf_counter() - started
            try:
                with self.context.engine_lock:
                    warm, merge_pass = self.context.warm_pass(signature)
                    executor = self.context.lease_executor()
                    merge_pass.engine.executor_kind = executor
                    sanitizer = self.context.sanitizer
                    violations_before = (sanitizer.violations
                                         if sanitizer is not None else 0)
                    compile_start = time.perf_counter()
                    result = compile_module(
                        module, technique,
                        target=self.config.target,
                        threshold=signature[1], oracle=signature[2],
                        run_identical_first=signature[3],
                        merge_pass=merge_pass)
                    compile_seconds = time.perf_counter() - compile_start
                break
            except PlanningError:
                # a worker died mid-run; the scheduler closed the pool.
                # Recycle and retry once on a fresh pool + pristine module.
                self.context.note_worker_failure()
                if attempt:
                    raise ProtocolError(
                        "internal", "merge failed twice on a broken worker "
                        "pool; giving up on this request")
        with self.context._lock:
            key = "warm_requests" if warm else "cold_requests"
            self.context.counters[key] += 1
        report = result.merge_report
        decisions = (protocol.jsonable_decisions(report.decision_keys())
                     if report is not None else [])
        response = {
            "benchmark": result.benchmark,
            "technique": result.technique,
            "merge_count": result.merge_count,
            "size_baseline": result.size_baseline,
            "size_after": result.size_after,
            "reduction_percent": result.reduction_percent,
            "decisions": decisions,
            "warm": warm,
            "result_cache_hit": False,
            "sanitize_violations": (self.context.sanitizer.violations
                                    - violations_before
                                    if self.context.sanitizer is not None
                                    else None),
            "timings": {
                "decode_seconds": round(decode_seconds, 6),
                "compile_seconds": round(compile_seconds, 6),
                "merge_seconds": round(result.merge_time, 6),
            },
        }
        if cache_key is not None:
            # the stored dict is never mutated (hits return a copy), so a
            # shallow store is safe
            with self._result_cache_lock:
                self._result_cache[cache_key] = response
                self._result_cache.move_to_end(cache_key)
                while len(self._result_cache) > self.config.result_cache_size:
                    self._result_cache.popitem(last=False)
        return response

    def _handle_open_session(self, payload: dict) -> dict:
        signature = self._parse_options(payload)
        if signature[0] != "fmsa":
            raise ProtocolError("bad-request",
                                "sessions support only technique 'fmsa'")
        with self._sessions_lock:
            if len(self._sessions) >= self.config.max_sessions:
                with self._stats_lock:
                    self._stats["busy_rejections"] += 1
                raise ProtocolError(
                    "busy", f"daemon is at its session limit "
                    f"({self.config.max_sessions}); close one or retry later")
        module_payload = payload.get("module")
        for attempt in (0, 1):
            module = protocol.build_module(module_payload)
            try:
                session = open_compile_session(
                    module,
                    target=self.config.target,
                    threshold=signature[1], oracle=signature[2],
                    jobs=self.context._resolve_jobs(),
                    alignment_cache=self.context.cache,
                    alignment_cache_resident=True,
                    session_executor=self.context.lease_executor,
                    sanitize=self.context.sanitizer is not None,
                    sanitizer=self.context.sanitizer)
                break
            except PlanningError:
                self.context.note_worker_failure()
                if attempt:
                    raise ProtocolError(
                        "internal", "session open failed twice on a broken "
                        "worker pool; giving up on this request")
        sid = uuid.uuid4().hex
        with self._sessions_lock:
            self._sessions[sid] = _SessionEntry(session=session)
        with self._stats_lock:
            self._stats["sessions_opened"] += 1
        return {
            "session": sid,
            "merge_count": session.report.merge_count,
            "decisions": protocol.jsonable_decisions(
                session.report.decision_keys()),
        }

    def _session_entry(self, payload: dict) -> Tuple[str, _SessionEntry]:
        sid = payload.get("session")
        if not isinstance(sid, str):
            raise ProtocolError("bad-request", "missing 'session' id")
        with self._sessions_lock:
            entry = self._sessions.get(sid)
        if entry is None:
            raise ProtocolError("unknown-session",
                                f"no open session {sid!r} (closed, evicted "
                                f"or never opened)")
        return sid, entry

    def _handle_session_update(self, payload: dict) -> dict:
        sid, entry = self._session_entry(payload)
        edits = protocol.build_edits(payload.get("edits", []))
        with entry.lock:
            entry.last_used = time.monotonic()
            session = entry.session
            try:
                try:
                    update = session.update(edits)
                except PlanningError:
                    # the replay died on a broken pool: the session's next
                    # update rolls the partial state back and replays; its
                    # executor factory leases the recycled pool.  The edits
                    # were already absorbed by the failed attempt.
                    self.context.note_worker_failure()
                    update = session.update([])
            except (ValueError, TypeError) as error:
                raise ProtocolError("bad-request",
                                    f"invalid edit script: {error}")
            entry.last_used = time.monotonic()
            return {
                "session": sid,
                "edits": update.edits,
                "merge_count": session.report.merge_count,
                "functions_replanned": update.functions_replanned,
                "plans_reused": update.plans_reused,
                "merges_kept": update.merges_kept,
                "update_seconds": round(update.update_seconds, 6),
                "decisions": protocol.jsonable_decisions(
                    session.report.decision_keys()),
            }

    def _handle_close_session(self, payload: dict) -> dict:
        sid, entry = self._session_entry(payload)
        with self._sessions_lock:
            self._sessions.pop(sid, None)
        with entry.lock:
            entry.session.close()
        with self._stats_lock:
            self._stats["sessions_closed"] += 1
        return {"session": sid, "closed": True}

    def note_client_disconnect(self) -> None:
        with self._stats_lock:
            self._stats["client_disconnects"] += 1

    def note_request_timeout(self) -> None:
        """A client stalled past ``request_timeout`` (or the wire died on a
        timeout): the handler thread was reclaimed, count it."""
        with self._stats_lock:
            self._stats["request_timeouts"] += 1

    def note_error(self) -> None:
        with self._stats_lock:
            self._stats["errors"] += 1

    def stats(self) -> dict:
        with self._stats_lock:
            stats = dict(self._stats)
        with self._sessions_lock:
            stats["sessions_open"] = len(self._sessions)
        with self.context._lock:
            stats.update(self.context.counters)
        stats.update(self.context.executor_stats())
        stats.update(self.context.cache.stats_dict())
        stats["cache_loaded_entries"] = self.context.loaded_entries
        stats["cache_load_seconds"] = round(
            self.context.cache_load_seconds, 6)
        stats["pool_spawn_seconds"] = round(
            self.context.pool_spawn_seconds, 6)
        stats["sanitize_enabled"] = self.context.sanitizer is not None
        if self.context.sanitizer is not None:
            stats.update(self.context.sanitizer.stats())
        stats["uptime_seconds"] = round(time.monotonic() - self.started, 3)
        stats["queue_limit"] = self.config.queue_limit
        stats["request_timeout_seconds"] = self.config.request_timeout
        stats["breaker"] = self.breaker.snapshot()
        stats["degradations"] = self.context.degradation_snapshot()
        with self._result_cache_lock:
            stats["result_cache_entries"] = len(self._result_cache)
        return stats


def _make_handler(daemon: MergeDaemon):
    """The per-daemon HTTP handler class (closure over ``daemon``)."""

    class MergeRequestHandler(BaseHTTPRequestHandler):
        protocol_version = "HTTP/1.1"
        server_version = "repro-merged/1.0"

        # -- plumbing ------------------------------------------------------
        def log_message(self, format, *args):  # noqa: A002 - stdlib name
            pass  # request logging is the client's business, not stderr's

        def setup(self):
            super().setup()
            # a slow or malicious client (stalled body, unread response)
            # must not pin a handler thread forever: every socket op is
            # bounded by the per-request timeout
            timeout = daemon.config.request_timeout
            if timeout and timeout > 0:
                self.connection.settimeout(timeout)

        def _send_json(self, status: int, payload: dict,
                       retry_after: Optional[float] = None) -> None:
            body = protocol.dump_response(payload)
            try:
                if fault_triggered("service.socket_drop"):
                    raise BrokenPipeError("injected mid-response disconnect")
                self.send_response(status)
                self.send_header("Content-Type", "application/json")
                self.send_header("Content-Length", str(len(body)))
                if retry_after is not None:
                    self.send_header("Retry-After",
                                     str(max(1, int(retry_after))))
                self.end_headers()
                self.wfile.write(body)
            except TimeoutError:
                # the client stopped reading its response; reclaim the
                # thread and count the stall (TimeoutError is an OSError
                # subclass, so this arm must come first)
                daemon.note_request_timeout()
                self.close_connection = True
            except (BrokenPipeError, ConnectionError, OSError):
                # the client went away mid-response; the daemon's own state
                # is already consistent - just account and carry on
                daemon.note_client_disconnect()
                self.close_connection = True

        def _method(self) -> str:
            return self.path.strip("/").split("?", 1)[0]

        def _reject(self, error: ProtocolError) -> None:
            daemon.note_error()
            # a rejected request may leave an unread body on the socket
            # (e.g. too-large rejects before reading); drop the connection
            # rather than let keep-alive misparse the leftovers
            self.close_connection = True
            self._send_json(error.status, error.to_payload(),
                            retry_after=error.retry_after)

        # -- verbs ---------------------------------------------------------
        def do_GET(self):
            method = self._method()
            if method not in ("stats", "health"):
                self._reject(ProtocolError(
                    "unknown-method",
                    f"GET serves only /stats and /health, not {self.path!r}"))
                return
            try:
                self._send_json(200, daemon.handle(method, {}))
            except ProtocolError as error:
                self._reject(error)
            except Exception as error:  # pragma: no cover - last resort
                self._reject(ProtocolError("internal",
                                           f"{type(error).__name__}: {error}"))

        def do_POST(self):
            method = self._method()
            if method not in protocol.METHODS:
                self._reject(ProtocolError("unknown-method",
                                           f"unknown method {self.path!r}"))
                return
            raw_length = self.headers.get("Content-Length")
            try:
                length = int(raw_length) if raw_length is not None else None
            except ValueError:
                self._reject(ProtocolError("bad-request",
                                           "bad Content-Length header"))
                return
            try:
                protocol.check_payload_size(
                    length, daemon.config.max_payload_bytes)
                try:
                    if fault_triggered("service.slow_client"):
                        raise TimeoutError("injected header-then-stall client")
                    body = self.rfile.read(length)
                except TimeoutError:
                    # headers arrived but the body stalled past the
                    # per-request timeout (TimeoutError before OSError:
                    # it is a subclass)
                    daemon.note_request_timeout()
                    self.close_connection = True
                    return
                except (ConnectionError, OSError):
                    daemon.note_client_disconnect()
                    self.close_connection = True
                    return
                if len(body) < length:  # client vanished mid-body
                    daemon.note_client_disconnect()
                    self.close_connection = True
                    return
                payload = protocol.parse_request(body)
                self._send_json(200, daemon.handle(method, payload))
            except ProtocolError as error:
                self._reject(error)
            except Exception as error:  # pragma: no cover - last resort
                self._reject(ProtocolError("internal",
                                           f"{type(error).__name__}: {error}"))

    return MergeRequestHandler
