"""Merge-as-a-service: a long-lived daemon around one warm merge engine.

Public API:

* :class:`MergeDaemon` / :class:`DaemonConfig` — the service itself: a
  stdlib HTTP/unix-socket server owning a warm engine context (persistent
  keep-alive worker pool, resident alignment cache with debounced
  autosave, warm merge passes), bounded-queue backpressure, concurrent
  TTL-evicted :class:`~repro.core.engine.MergeSession`\\ s and pool
  recycling after worker crashes (:mod:`repro.service.daemon`).
* :class:`ServiceClient` / :class:`ServiceError` — the matching client
  (:mod:`repro.service.client`).
* :mod:`repro.service.protocol` — the JSON wire protocol: regenerative
  module payloads, edit scripts, error codes.
* ``repro-served`` / ``repro-client`` console scripts
  (:mod:`repro.service.cli`).

Warm requests skip pool spawn, snapshot load and searcher construction;
decisions stay bit-identical to direct ``compile_module`` calls because
the daemon routes through the same pipeline seams rather than a second
merge path (``benchmarks/ci_service.py`` enforces both properties).
"""

from .client import ServiceClient, ServiceError
from .daemon import DaemonConfig, MergeDaemon, WarmContext
from .protocol import (ERROR_STATUS, METHODS, ProtocolError, build_edits,
                       build_module, jsonable_decisions)

__all__ = [
    "MergeDaemon", "DaemonConfig", "WarmContext",
    "ServiceClient", "ServiceError",
    "ProtocolError", "ERROR_STATUS", "METHODS",
    "build_module", "build_edits", "jsonable_decisions",
]
