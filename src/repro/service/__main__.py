"""``python -m repro.service`` starts the daemon (same as ``repro-served``)."""

import sys

from .cli import serve_main

if __name__ == "__main__":
    sys.exit(serve_main())
