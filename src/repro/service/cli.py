"""CLI entry points: ``repro-served`` (the daemon) and ``repro-client``.

Both are thin wrappers over :class:`~repro.service.daemon.MergeDaemon` and
:class:`~repro.service.client.ServiceClient`; the evaluation pipeline and
the CI smoke job drive the same objects in-process.  Examples::

    repro-served --port 7463 --executor process --jobs 4 \\
                 --align-cache /tmp/align.json
    repro-client --address 127.0.0.1:7463 health
    repro-client --address 127.0.0.1:7463 compile \\
                 --suite mibench --benchmark sha
    repro-client --address 127.0.0.1:7463 compile --source prog.c
    repro-client --address 127.0.0.1:7463 stats
"""

from __future__ import annotations

import argparse
import json
import signal
import sys
from typing import List, Optional

from .client import ServiceClient, ServiceError
from .daemon import DaemonConfig, MergeDaemon


def serve_main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-served",
        description="Long-lived merge daemon: warm engine, persistent "
                    "worker pool, resident alignment cache.")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=7463,
                        help="TCP port (0 picks an ephemeral one)")
    parser.add_argument("--unix-socket", default=None, metavar="PATH",
                        help="serve on a unix socket instead of TCP")
    parser.add_argument("--executor", default="auto",
                        choices=("auto", "serial", "thread", "process"),
                        help="plan executor leased to every request")
    parser.add_argument("--jobs", type=int, default=None,
                        help="worker count (default: cores - 1)")
    parser.add_argument("--queue-limit", type=int, default=8,
                        help="in-flight work requests before 429 rejections")
    parser.add_argument("--max-sessions", type=int, default=32)
    parser.add_argument("--session-ttl", type=float, default=300.0,
                        help="idle seconds before a session is evicted")
    parser.add_argument("--recycle-after", type=int, default=0,
                        help="recycle the worker pool every N requests "
                             "(0: only after failures)")
    parser.add_argument("--align-cache", default=None, metavar="PATH",
                        help="resident alignment-cache snapshot file "
                             "(loaded once at boot, autosaved, flushed on "
                             "shutdown)")
    parser.add_argument("--autosave-every", type=int, default=256,
                        help="autosave after this many new cache entries")
    parser.add_argument("--autosave-interval", type=float, default=30.0,
                        help="time-based autosave flush period (seconds)")
    parser.add_argument("--result-cache", type=int, default=64,
                        help="memoized compile responses for identical "
                             "(module, options) requests (0 disables)")
    parser.add_argument("--max-payload", type=int, default=4 << 20,
                        help="request body size limit in bytes")
    parser.add_argument("--target", default="x86-64")
    parser.add_argument("--request-timeout", type=float, default=30.0,
                        help="per-request socket timeout in seconds; a "
                             "client that stalls past it loses the "
                             "connection and is counted in /stats "
                             "(0 disables)")
    parser.add_argument("--breaker-threshold", type=int, default=3,
                        help="consecutive internal failures that open the "
                             "circuit breaker (503 + Retry-After while "
                             "open; 0 disables)")
    parser.add_argument("--breaker-reset", type=float, default=5.0,
                        help="seconds the breaker stays open before a "
                             "half-open probe is admitted")
    parser.add_argument("--degrade-after", type=int, default=3,
                        help="consecutive worker-pool failures before the "
                             "executor steps down its ladder "
                             "(process -> thread -> serial; 0 disables)")
    parser.add_argument("--sanitize", action="store_true", default=None,
                        help="run the static-analysis sanitizer (verifier "
                             "v2 + merge linter) on every request; "
                             "violations are recorded in the stats "
                             "counters (default: REPRO_SANITIZE)")
    args = parser.parse_args(argv)

    config = DaemonConfig(
        host=args.host, port=args.port, unix_socket=args.unix_socket,
        executor=args.executor, jobs=args.jobs,
        queue_limit=args.queue_limit, max_sessions=args.max_sessions,
        session_ttl=args.session_ttl, recycle_after=args.recycle_after,
        alignment_cache_path=args.align_cache,
        autosave_every_puts=args.autosave_every,
        autosave_interval=args.autosave_interval,
        result_cache_size=args.result_cache,
        max_payload_bytes=args.max_payload, target=args.target,
        request_timeout=args.request_timeout,
        breaker_threshold=args.breaker_threshold,
        breaker_reset_seconds=args.breaker_reset,
        degrade_after_failures=args.degrade_after,
        sanitize=args.sanitize)
    daemon = MergeDaemon(config)

    def _stop(signum, frame):
        raise KeyboardInterrupt

    signal.signal(signal.SIGTERM, _stop)
    print(f"repro-served: listening on {daemon.address} "
          f"(executor={config.executor}, queue_limit={config.queue_limit})",
          flush=True)
    try:
        daemon.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        daemon.shutdown()
        print("repro-served: shut down (caches flushed)", flush=True)
    return 0


def _emit(payload: dict) -> None:
    json.dump(payload, sys.stdout, indent=2, sort_keys=True)
    sys.stdout.write("\n")


def client_main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-client",
        description="Talk to a running merge daemon.")
    parser.add_argument("--address", default="127.0.0.1:7463",
                        help="host:port, or a unix-socket path")
    parser.add_argument("--timeout", type=float, default=60.0)
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("health")
    commands.add_parser("stats")

    compile_cmd = commands.add_parser(
        "compile", help="compile one module through the daemon")
    source = compile_cmd.add_mutually_exclusive_group(required=True)
    source.add_argument("--source", metavar="FILE",
                        help="mini-C source file ('-' for stdin)")
    source.add_argument("--suite", choices=("mibench", "spec2006"))
    compile_cmd.add_argument("--benchmark", default=None,
                             help="workload benchmark name (with --suite)")
    compile_cmd.add_argument("--scale", type=float, default=None)
    compile_cmd.add_argument("--cap", type=int, default=None)
    compile_cmd.add_argument("--seed", type=int, default=None)
    compile_cmd.add_argument("--technique", default="fmsa",
                             choices=("baseline", "identical", "soa", "fmsa"))
    compile_cmd.add_argument("--threshold", type=int, default=1)
    compile_cmd.add_argument("--oracle", action="store_true")

    args = parser.parse_args(argv)
    client = ServiceClient(args.address, timeout=args.timeout)
    try:
        if args.command == "health":
            _emit(client.health())
        elif args.command == "stats":
            _emit(client.stats())
        elif args.command == "compile":
            if args.source is not None:
                text = (sys.stdin.read() if args.source == "-"
                        else open(args.source).read())
                module = {"kind": "source", "text": text}
            else:
                if not args.benchmark:
                    parser.error("--suite needs --benchmark")
                module = {"kind": "workload", "suite": args.suite,
                          "benchmark": args.benchmark}
                for key in ("scale", "cap", "seed"):
                    value = getattr(args, key)
                    if value is not None:
                        module[key] = value
            options = {"technique": args.technique,
                       "threshold": args.threshold, "oracle": args.oracle}
            _emit(client.compile_module(module, options))
    except ServiceError as error:
        print(f"repro-client: {error}", file=sys.stderr)
        return 2
    except (ConnectionError, OSError) as error:
        print(f"repro-client: cannot reach {args.address}: {error}",
              file=sys.stderr)
        return 3
    finally:
        client.close()
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(serve_main())
