"""A minimal pass manager.

Passes are callables over a :class:`~repro.ir.module.Module` (module passes)
or over a :class:`~repro.ir.function.Function` (function passes, adapted to
module scope by :class:`FunctionPassAdapter`).  The manager records per-pass
wall-clock timings which the evaluation harness reuses for the
compilation-time experiments (Figures 12 and 13).
"""

from __future__ import annotations

import time
from typing import Callable, Dict, List, Optional, Tuple

from ..ir.function import Function
from ..ir.module import Module


class Pass:
    """Base class for module passes."""

    #: Short identifier used in reports and timing breakdowns.
    name: str = "pass"

    def run(self, module: Module):
        raise NotImplementedError

    def __call__(self, module: Module):
        return self.run(module)


class FunctionPass(Pass):
    """Base class for passes that operate one function at a time."""

    def run_on_function(self, function: Function) -> bool:
        """Process one function; return True if it was modified."""
        raise NotImplementedError

    def run(self, module: Module) -> bool:
        changed = False
        for function in module.defined_functions():
            changed |= bool(self.run_on_function(function))
        return changed


class PassManager:
    """Runs a sequence of passes over a module and records timings."""

    def __init__(self, passes: Optional[List[Pass]] = None):
        self.passes: List[Pass] = list(passes or [])
        self.timings: List[Tuple[str, float]] = []

    def add(self, pass_: Pass) -> "PassManager":
        self.passes.append(pass_)
        return self

    def run(self, module: Module) -> Dict[str, object]:
        """Run all passes in order; returns a dict with per-pass results and
        wall-clock timings in seconds."""
        results: Dict[str, object] = {}
        self.timings = []
        for pass_ in self.passes:
            start = time.perf_counter()
            results[pass_.name] = pass_.run(module)
            self.timings.append((pass_.name, time.perf_counter() - start))
        return results

    def total_time(self) -> float:
        return sum(t for _, t in self.timings)
