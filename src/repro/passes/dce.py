"""Dead-code elimination passes.

Two flavours are provided:

* :class:`DeadCodeElimination` — removes side-effect-free instructions whose
  results have no users (iterated to a fixed point).
* :class:`DeadFunctionElimination` — removes internal functions that are
  never referenced; this is what makes full removal of merged originals
  actually shrink the module.
"""

from __future__ import annotations

from ..ir.callgraph import CallGraph
from ..ir.function import Function
from ..ir.module import Module
from .pass_manager import FunctionPass, Pass


class DeadCodeElimination(FunctionPass):
    """Classic trivially-dead-instruction elimination."""

    name = "dce"

    def run_on_function(self, function: Function) -> bool:
        changed = False
        progress = True
        while progress:
            progress = False
            for block in function.blocks:
                for inst in list(block.instructions):
                    if inst.has_side_effects or inst.is_terminator:
                        continue
                    if inst.type.is_void:
                        continue
                    if not inst.users:
                        inst.erase_from_parent()
                        changed = True
                        progress = True
        return changed


class DeadFunctionElimination(Pass):
    """Remove internal functions with no remaining references."""

    name = "dead-function-elim"

    def run(self, module: Module) -> int:
        removed = 0
        progress = True
        while progress:
            progress = False
            graph = CallGraph(module)
            for function in list(module.functions):
                if function.is_declaration:
                    continue
                if graph.is_dead(function) and not function.users:
                    module.remove_function(function)
                    removed += 1
                    progress = True
        return removed
