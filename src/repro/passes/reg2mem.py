"""Phi demotion (``reg2mem``).

The paper's implementation "assumes that the input functions have all their
phi-functions demoted to memory operations, simplifying code generation"
(Section III-A).  This pass performs that demotion: every phi node is
replaced by an ``alloca`` in the entry block, stores of each incoming value
at the end of the corresponding predecessor, and a load where the phi used
to be.
"""

from __future__ import annotations

from ..ir.basicblock import BasicBlock
from ..ir.builder import IRBuilder
from ..ir.function import Function
from ..ir.instructions import Alloca, Load, Store
from .pass_manager import FunctionPass


class RegToMem(FunctionPass):

    name = "reg2mem"

    def run_on_function(self, function: Function) -> bool:
        if function.is_declaration:
            return False
        phis = [inst for block in function.blocks for inst in block.phis()]
        if not phis:
            return False
        entry = function.entry_block
        for phi in phis:
            slot = Alloca(phi.type, name=f"{phi.name or 'phi'}.slot")
            entry.insert(0, slot)
            # store incoming values at the end of each predecessor, before
            # its terminator
            for value, pred in phi.incoming():
                assert isinstance(pred, BasicBlock)
                store = Store(value, slot)
                term = pred.terminator
                if term is not None:
                    pred.insert_before(term, store)
                else:  # malformed block: append, verifier will flag it
                    pred.append(store)
            # replace the phi itself with a load at its position
            block = phi.parent
            assert block is not None
            idx = block.instructions.index(phi)
            load = Load(slot, name=phi.name or "phi.load")
            phi.replace_all_uses_with(load)
            phi.erase_from_parent()
            block.insert(idx, load)
        return True


def demote_phis(function: Function) -> bool:
    """Convenience wrapper used by the merging pass pre-conditions."""
    return RegToMem().run_on_function(function)
