"""CFG simplification.

Removes unreachable blocks and merges trivial straight-line block chains
(a block whose only terminator is an unconditional branch to a block with a
single predecessor).  Run after merging to clean up the diamond scaffolding
when both sides turned out to be empty, and as part of the -Os-like
pre-pipeline.
"""

from __future__ import annotations

from ..ir import cfg
from ..ir.basicblock import BasicBlock
from ..ir.function import Function
from .pass_manager import FunctionPass


class SimplifyCFG(FunctionPass):

    name = "simplifycfg"

    def run_on_function(self, function: Function) -> bool:
        changed = False
        changed |= self._remove_unreachable(function)
        changed |= self._merge_straightline(function)
        return changed

    def _remove_unreachable(self, function: Function) -> bool:
        if function.is_declaration:
            return False
        reachable = cfg.reachable_blocks(function)
        changed = False
        for block in list(function.blocks):
            if id(block) not in reachable:
                # drop phi references from successors first
                for inst in list(block.instructions):
                    inst.erase_from_parent()
                function.remove_block(block)
                changed = True
        return changed

    def _merge_straightline(self, function: Function) -> bool:
        """Fold ``A -> br B`` into a single block when B has exactly one
        predecessor and is not a landing block."""
        changed = True
        any_change = False
        while changed:
            changed = False
            for block in list(function.blocks):
                term = block.terminator
                if term is None or term.opcode != "br" or len(term.operands) != 1:
                    continue
                succ = term.operands[0]
                if not isinstance(succ, BasicBlock) or succ is block:
                    continue
                if succ is function.entry_block or succ.is_landing_block:
                    continue
                if len(succ.predecessors()) != 1:
                    continue
                if succ.phis():
                    continue
                # splice succ's instructions into block
                term.erase_from_parent()
                for inst in list(succ.instructions):
                    succ.remove(inst)
                    block.append(inst)
                succ.replace_all_uses_with(block)
                function.remove_block(succ)
                changed = True
                any_change = True
        return any_change
