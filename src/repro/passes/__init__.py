"""Generic IR passes used by the -Os-like pre-pipeline and cleanups."""

from .dce import DeadCodeElimination, DeadFunctionElimination
from .pass_manager import FunctionPass, Pass, PassManager
from .reg2mem import RegToMem, demote_phis
from .simplify_cfg import SimplifyCFG

__all__ = [
    "Pass", "FunctionPass", "PassManager",
    "DeadCodeElimination", "DeadFunctionElimination",
    "SimplifyCFG", "RegToMem", "demote_phis",
]
