"""x86-64 code-size cost model (Intel target of the paper's evaluation)."""

from __future__ import annotations

from .cost_model import TargetCostModel, register_target


class X86CostModel(TargetCostModel):
    """Approximate byte sizes of x86-64 encodings for each IR opcode.

    x86-64 has variable-length encodings: simple register ALU operations are
    about 3 bytes, memory operations with a ModRM/SIB byte and displacement
    around 4-6, calls 5, conditional branches 2-6.  Casts between integer
    registers are often free (sub-register addressing) while int<->float
    conversions need SSE instructions.
    """

    name = "x86-64"
    default_cost = 4
    function_overhead = 10
    per_argument_overhead = 2
    free_argument_registers = 6

    opcode_costs = {
        # integer ALU
        "add": 3, "sub": 3, "mul": 4, "sdiv": 6, "udiv": 6, "srem": 6, "urem": 6,
        "and": 3, "or": 3, "xor": 3, "shl": 3, "lshr": 3, "ashr": 3,
        # float ALU (SSE scalar)
        "fadd": 4, "fsub": 4, "fmul": 4, "fdiv": 5, "frem": 8,
        # comparisons
        "icmp": 3, "fcmp": 4,
        # memory
        "alloca": 4, "load": 4, "store": 4, "gep": 4,
        # calls & control flow
        "call": 5, "invoke": 7, "landingpad": 6,
        "br": 2, "switch": 6, "ret": 2, "unreachable": 1,
        # data movement
        "select": 6, "phi": 3, "freeze": 0,
        # casts
        "bitcast": 0, "zext": 3, "sext": 3, "trunc": 2,
        "fptrunc": 4, "fpext": 4, "sitofp": 5, "uitofp": 5,
        "fptosi": 5, "fptoui": 5, "ptrtoint": 0, "inttoptr": 0,
    }


#: Singleton instance registered for :func:`repro.targets.get_target`.
X86_64 = register_target(X86CostModel())
