"""Target-transformation-interface-like code-size cost models.

The paper's profitability analysis queries LLVM's TTI for a per-instruction
*code-size* cost, i.e. an estimate of how many bytes (here: abstract size
units) an IR instruction contributes to the final object file on a given
target.  We reproduce that interface: a :class:`TargetCostModel` maps
instructions to integer size costs and aggregates them over blocks, functions
and modules.

Two concrete targets are provided, mirroring the paper's evaluation targets:

* :class:`~repro.targets.x86_64.X86CostModel` — a CISC-like target where most
  instructions lower to 3-5 bytes and memory operands are folded cheaply.
* :class:`~repro.targets.arm_thumb.ArmThumbCostModel` — a compact RISC
  encoding where most instructions are 2-4 bytes but calls, selects and
  branches are comparatively more expensive.

Absolute numbers are not meant to match real encoders byte-for-byte; only the
relative structure matters for the merging decisions and reported reductions,
which is also how the paper uses TTI.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..ir.basicblock import BasicBlock
from ..ir.function import Function
from ..ir.instructions import Instruction
from ..ir.module import Module


class TargetCostModel:
    """Base class for per-target code-size cost models."""

    #: Human-readable target name (e.g. ``"x86-64"``).
    name: str = "generic"

    #: Default cost (size units) of an instruction with no specific entry.
    default_cost: int = 4

    #: Per-opcode size costs.
    opcode_costs: Dict[str, int] = {}

    #: Fixed per-function overhead: prologue/epilogue, alignment padding and
    #: symbol-table footprint.  Removing a whole function saves this too.
    function_overhead: int = 8

    #: Extra bytes contributed per formal parameter beyond the register
    #: budget (models stack-passing/reload code at call boundaries).
    per_argument_overhead: int = 1

    #: Number of parameters passed in registers "for free".
    free_argument_registers: int = 4

    def instruction_cost(self, inst: Instruction) -> int:
        """Code-size cost of one IR instruction when lowered."""
        cost = self.opcode_costs.get(inst.opcode, self.default_cost)
        if inst.opcode in ("call", "invoke"):
            # argument marshalling beyond the register budget
            arg_count = len(inst.operands) - 1
            if inst.opcode == "invoke":
                arg_count -= 2
            extra = max(0, arg_count - self.free_argument_registers)
            cost += extra * self.per_argument_overhead
        if inst.opcode == "switch":
            cases = max(0, (len(inst.operands) - 2) // 2)
            cost += cases * 2
        if inst.opcode == "phi":
            # phi nodes usually lower to register copies on edges
            cost += max(0, len(inst.operands) // 2 - 1)
        return cost

    def block_cost(self, block: BasicBlock) -> int:
        return sum(self.instruction_cost(inst) for inst in block.instructions)

    def function_cost(self, function: Function) -> int:
        """Size of a defined function including fixed overhead; declarations
        are free (they live in other objects)."""
        if function.is_declaration:
            return 0
        body = sum(self.block_cost(block) for block in function.blocks)
        args = max(0, len(function.arguments) - self.free_argument_registers)
        return body + self.function_overhead + args * self.per_argument_overhead

    def module_cost(self, module: Module) -> int:
        return sum(self.function_cost(f) for f in module.functions)

    def call_site_cost(self, num_args: int) -> int:
        """Cost of one call site with ``num_args`` arguments; used by the
        profitability model for thunks and updated call sites."""
        base = self.opcode_costs.get("call", self.default_cost)
        extra = max(0, num_args - self.free_argument_registers)
        return base + extra * self.per_argument_overhead

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<TargetCostModel {self.name}>"


_REGISTRY: Dict[str, TargetCostModel] = {}


def register_target(model: TargetCostModel) -> TargetCostModel:
    _REGISTRY[model.name] = model
    return model


def get_target(name: str) -> TargetCostModel:
    """Look up a registered target cost model by name.

    Accepted names include ``"x86-64"``/``"x86"``/``"intel"`` and
    ``"arm-thumb"``/``"arm"``/``"thumb"``.
    """
    # import concrete targets lazily so registration happens on first use
    from . import arm_thumb, x86_64  # noqa: F401  (side effect: registration)

    canonical = {
        "x86": "x86-64", "intel": "x86-64", "x86-64": "x86-64", "x86_64": "x86-64",
        "arm": "arm-thumb", "thumb": "arm-thumb", "arm-thumb": "arm-thumb",
        "arm_thumb": "arm-thumb",
    }.get(name.lower())
    if canonical is None or canonical not in _REGISTRY:
        raise KeyError(f"unknown target: {name!r}")
    return _REGISTRY[canonical]


def available_targets() -> list:
    from . import arm_thumb, x86_64  # noqa: F401

    return sorted(_REGISTRY)
