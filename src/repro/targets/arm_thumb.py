"""ARM Thumb code-size cost model (ARM target of the paper's evaluation)."""

from __future__ import annotations

from .cost_model import TargetCostModel, register_target


class ArmThumbCostModel(TargetCostModel):
    """Approximate byte sizes of Thumb-2 encodings for each IR opcode.

    Thumb mixes 16-bit and 32-bit encodings: simple ALU operations on low
    registers are 2 bytes, wider operations and memory accesses with offsets
    are 4, calls (BL) are 4, and integer division/selects expand into short
    sequences.  The register budget for arguments is smaller than x86-64
    (r0-r3), so wide parameter lists are relatively more expensive, which is
    one of the second-order target differences the paper mentions.
    """

    name = "arm-thumb"
    default_cost = 4
    function_overhead = 8
    per_argument_overhead = 2
    free_argument_registers = 4

    opcode_costs = {
        # integer ALU
        "add": 2, "sub": 2, "mul": 4, "sdiv": 4, "udiv": 4, "srem": 8, "urem": 8,
        "and": 2, "or": 2, "xor": 2, "shl": 2, "lshr": 2, "ashr": 2,
        # float ALU (VFP)
        "fadd": 4, "fsub": 4, "fmul": 4, "fdiv": 4, "frem": 12,
        # comparisons
        "icmp": 2, "fcmp": 4,
        # memory
        "alloca": 2, "load": 4, "store": 4, "gep": 4,
        # calls & control flow
        "call": 4, "invoke": 8, "landingpad": 8,
        "br": 2, "switch": 8, "ret": 2, "unreachable": 2,
        # data movement
        "select": 6, "phi": 2, "freeze": 0,
        # casts
        "bitcast": 0, "zext": 2, "sext": 2, "trunc": 2,
        "fptrunc": 4, "fpext": 4, "sitofp": 4, "uitofp": 4,
        "fptosi": 4, "fptoui": 4, "ptrtoint": 0, "inttoptr": 0,
    }


#: Singleton instance registered for :func:`repro.targets.get_target`.
ARM_THUMB = register_target(ArmThumbCostModel())
