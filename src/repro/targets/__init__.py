"""Target code-size cost models (TTI-like interface)."""

from .arm_thumb import ARM_THUMB, ArmThumbCostModel
from .cost_model import TargetCostModel, available_targets, get_target, register_target
from .x86_64 import X86_64, X86CostModel

__all__ = [
    "TargetCostModel", "get_target", "register_target", "available_targets",
    "X86CostModel", "ArmThumbCostModel", "X86_64", "ARM_THUMB",
]
