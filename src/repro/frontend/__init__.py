"""Mini-C front-end: lexer, parser and IR lowering."""

from .ast_nodes import Program
from .lexer import Lexer, LexerError, Token, tokenize
from .lowering import Compiler, LoweringError, compile_source
from .parser import ParseError, Parser, parse

__all__ = [
    "Program", "Lexer", "LexerError", "Token", "tokenize",
    "Compiler", "LoweringError", "compile_source",
    "ParseError", "Parser", "parse",
]
