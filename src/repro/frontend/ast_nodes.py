"""AST node definitions for the mini-C front-end."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional


# ---------------------------------------------------------------------------
# Type syntax
# ---------------------------------------------------------------------------

@dataclass
class TypeName:
    """A syntactic type: a base name plus pointer depth and array length.

    ``base`` is one of the builtin names ("void", "int", "long", "short",
    "char", "float", "double", "bool") or ``struct <name>``.
    """

    base: str
    pointer_depth: int = 0
    array_length: Optional[int] = None
    is_unsigned: bool = False

    def pointer_to(self) -> "TypeName":
        return TypeName(self.base, self.pointer_depth + 1, None, self.is_unsigned)

    def __str__(self) -> str:
        text = self.base + "*" * self.pointer_depth
        if self.array_length is not None:
            text += f"[{self.array_length}]"
        return text


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------

class Expr:
    """Base class of expressions."""


@dataclass
class IntLiteral(Expr):
    value: int


@dataclass
class FloatLiteral(Expr):
    value: float
    is_single: bool = False


@dataclass
class BoolLiteral(Expr):
    value: bool


@dataclass
class NullLiteral(Expr):
    pass


@dataclass
class StringLiteral(Expr):
    value: str


@dataclass
class Identifier(Expr):
    name: str


@dataclass
class UnaryOp(Expr):
    op: str              # '-', '!', '~', '*', '&', '++', '--'
    operand: Expr
    postfix: bool = False


@dataclass
class BinaryOp(Expr):
    op: str
    left: Expr
    right: Expr


@dataclass
class Assignment(Expr):
    target: Expr
    value: Expr
    op: str = "="        # '=', '+=', '-=', '*=', '/=', ...


@dataclass
class Conditional(Expr):
    condition: Expr
    then_value: Expr
    else_value: Expr


@dataclass
class CallExpr(Expr):
    callee: str
    args: List[Expr] = field(default_factory=list)


@dataclass
class IndexExpr(Expr):
    base: Expr
    index: Expr


@dataclass
class MemberExpr(Expr):
    base: Expr
    member: str
    through_pointer: bool = False  # True for '->'


@dataclass
class CastExpr(Expr):
    target_type: TypeName
    operand: Expr


@dataclass
class SizeofExpr(Expr):
    target_type: TypeName


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------

class Stmt:
    """Base class of statements."""


@dataclass
class Block(Stmt):
    statements: List[Stmt] = field(default_factory=list)


@dataclass
class VarDecl(Stmt):
    var_type: TypeName
    name: str
    initializer: Optional[Expr] = None


@dataclass
class ExprStmt(Stmt):
    expression: Expr


@dataclass
class IfStmt(Stmt):
    condition: Expr
    then_branch: Stmt
    else_branch: Optional[Stmt] = None


@dataclass
class WhileStmt(Stmt):
    condition: Expr
    body: Stmt


@dataclass
class ForStmt(Stmt):
    init: Optional[Stmt]
    condition: Optional[Expr]
    step: Optional[Expr]
    body: Stmt


@dataclass
class ReturnStmt(Stmt):
    value: Optional[Expr] = None


@dataclass
class BreakStmt(Stmt):
    pass


@dataclass
class ContinueStmt(Stmt):
    pass


# ---------------------------------------------------------------------------
# Top-level declarations
# ---------------------------------------------------------------------------

@dataclass
class Parameter:
    param_type: TypeName
    name: str


@dataclass
class FunctionDecl:
    return_type: TypeName
    name: str
    parameters: List[Parameter] = field(default_factory=list)
    body: Optional[Block] = None     # None = extern declaration
    is_static: bool = False


@dataclass
class StructField:
    field_type: TypeName
    name: str


@dataclass
class StructDecl:
    name: str
    fields: List[StructField] = field(default_factory=list)


@dataclass
class GlobalVarDecl:
    var_type: TypeName
    name: str
    initializer: Optional[Expr] = None


@dataclass
class Program:
    """A parsed translation unit."""

    structs: List[StructDecl] = field(default_factory=list)
    globals: List[GlobalVarDecl] = field(default_factory=list)
    functions: List[FunctionDecl] = field(default_factory=list)
