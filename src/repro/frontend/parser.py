"""Recursive-descent parser for the mini-C language."""

from __future__ import annotations

from typing import List, Optional

from . import ast_nodes as ast
from .lexer import Token, tokenize


class ParseError(Exception):
    """Raised on a syntax error, with the offending token's position."""

    def __init__(self, message: str, token: Token):
        super().__init__(f"{token.line}:{token.column}: {message} (near {token.text!r})")
        self.token = token


#: Binary operator precedence (larger binds tighter); mirrors C.
PRECEDENCE = {
    "||": 1, "&&": 2,
    "|": 3, "^": 4, "&": 5,
    "==": 6, "!=": 6,
    "<": 7, ">": 7, "<=": 7, ">=": 7,
    "<<": 8, ">>": 8,
    "+": 9, "-": 9,
    "*": 10, "/": 10, "%": 10,
}

BUILTIN_TYPE_NAMES = {"void", "int", "long", "short", "char", "float", "double", "bool"}

COMPOUND_ASSIGN_OPS = {"+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<=", ">>="}


class Parser:
    """Parses a token stream into a :class:`~repro.frontend.ast_nodes.Program`."""

    def __init__(self, tokens: List[Token]):
        self.tokens = tokens
        self.position = 0
        self.struct_names: set = set()

    # -- token utilities -----------------------------------------------------------
    @property
    def current(self) -> Token:
        return self.tokens[self.position]

    def _peek(self, offset: int = 1) -> Token:
        index = min(self.position + offset, len(self.tokens) - 1)
        return self.tokens[index]

    def _advance(self) -> Token:
        token = self.current
        if token.kind != "eof":
            self.position += 1
        return token

    def _expect_op(self, text: str) -> Token:
        if not self.current.is_op(text):
            raise ParseError(f"expected {text!r}", self.current)
        return self._advance()

    def _expect_ident(self) -> Token:
        if self.current.kind != "ident":
            raise ParseError("expected an identifier", self.current)
        return self._advance()

    def _accept_op(self, text: str) -> bool:
        if self.current.is_op(text):
            self._advance()
            return True
        return False

    def _accept_keyword(self, text: str) -> bool:
        if self.current.is_keyword(text):
            self._advance()
            return True
        return False

    # -- types -----------------------------------------------------------------------
    def _at_type(self) -> bool:
        token = self.current
        if token.kind == "keyword" and token.text in BUILTIN_TYPE_NAMES | {"struct",
                                                                           "unsigned",
                                                                           "signed"}:
            return True
        return False

    def parse_type(self) -> ast.TypeName:
        is_unsigned = False
        while self.current.is_keyword("unsigned") or self.current.is_keyword("signed"):
            is_unsigned = self.current.text == "unsigned"
            self._advance()
        if self.current.is_keyword("struct"):
            self._advance()
            name = self._expect_ident().text
            base = f"struct {name}"
        elif self.current.kind == "keyword" and self.current.text in BUILTIN_TYPE_NAMES:
            base = self._advance().text
            # allow 'long long', 'long int', etc.
            while self.current.kind == "keyword" and self.current.text in ("long", "int"):
                extra = self._advance().text
                if base == "long" or extra == "long":
                    base = "long"
        elif self.current.kind == "ident" and self.current.text in self.struct_names:
            base = f"struct {self._advance().text}"
        else:
            if is_unsigned:
                base = "int"
            else:
                raise ParseError("expected a type name", self.current)
        type_name = ast.TypeName(base, is_unsigned=is_unsigned)
        while self._accept_op("*"):
            type_name.pointer_depth += 1
        return type_name

    # -- top level ----------------------------------------------------------------------
    def parse_program(self) -> ast.Program:
        program = ast.Program()
        while self.current.kind != "eof":
            if self.current.is_keyword("struct") and self._peek(2).is_op("{"):
                program.structs.append(self._parse_struct())
                continue
            if self.current.is_keyword("typedef"):
                raise ParseError("typedef is not supported", self.current)
            self._parse_top_level(program)
        return program

    def _parse_struct(self) -> ast.StructDecl:
        self._advance()  # struct
        name = self._expect_ident().text
        self.struct_names.add(name)
        self._expect_op("{")
        fields: List[ast.StructField] = []
        while not self.current.is_op("}"):
            field_type = self.parse_type()
            field_name = self._expect_ident().text
            if self._accept_op("["):
                length_token = self._advance()
                field_type = ast.TypeName(field_type.base, field_type.pointer_depth,
                                          int(length_token.value), field_type.is_unsigned)
                self._expect_op("]")
            self._expect_op(";")
            fields.append(ast.StructField(field_type, field_name))
        self._expect_op("}")
        self._expect_op(";")
        return ast.StructDecl(name, fields)

    def _parse_top_level(self, program: ast.Program) -> None:
        is_static = False
        while self.current.is_keyword("extern") or self.current.is_keyword("static"):
            is_static = is_static or self.current.text == "static"
            self._advance()
        decl_type = self.parse_type()
        name = self._expect_ident().text
        if self.current.is_op("("):
            program.functions.append(self._parse_function(decl_type, name, is_static))
            return
        # global variable
        initializer = None
        if self._accept_op("["):
            length_token = self._advance()
            decl_type = ast.TypeName(decl_type.base, decl_type.pointer_depth,
                                     int(length_token.value), decl_type.is_unsigned)
            self._expect_op("]")
        if self._accept_op("="):
            initializer = self.parse_expression()
        self._expect_op(";")
        program.globals.append(ast.GlobalVarDecl(decl_type, name, initializer))

    def _parse_function(self, return_type: ast.TypeName, name: str,
                        is_static: bool) -> ast.FunctionDecl:
        self._expect_op("(")
        parameters: List[ast.Parameter] = []
        if not self.current.is_op(")"):
            if self.current.is_keyword("void") and self._peek().is_op(")"):
                self._advance()
            else:
                while True:
                    param_type = self.parse_type()
                    param_name = self._expect_ident().text if self.current.kind == "ident" else ""
                    if self._accept_op("["):
                        self._expect_op("]")
                        param_type = param_type.pointer_to()
                    parameters.append(ast.Parameter(param_type, param_name))
                    if not self._accept_op(","):
                        break
        self._expect_op(")")
        if self._accept_op(";"):
            return ast.FunctionDecl(return_type, name, parameters, None, is_static)
        body = self.parse_block()
        return ast.FunctionDecl(return_type, name, parameters, body, is_static)

    # -- statements ---------------------------------------------------------------------
    def parse_block(self) -> ast.Block:
        self._expect_op("{")
        statements: List[ast.Stmt] = []
        while not self.current.is_op("}"):
            statements.append(self.parse_statement())
        self._expect_op("}")
        return ast.Block(statements)

    def parse_statement(self) -> ast.Stmt:
        token = self.current
        if token.is_op("{"):
            return self.parse_block()
        if token.is_keyword("if"):
            return self._parse_if()
        if token.is_keyword("while"):
            return self._parse_while()
        if token.is_keyword("for"):
            return self._parse_for()
        if token.is_keyword("return"):
            self._advance()
            value = None if self.current.is_op(";") else self.parse_expression()
            self._expect_op(";")
            return ast.ReturnStmt(value)
        if token.is_keyword("break"):
            self._advance()
            self._expect_op(";")
            return ast.BreakStmt()
        if token.is_keyword("continue"):
            self._advance()
            self._expect_op(";")
            return ast.ContinueStmt()
        if self._at_type():
            return self._parse_var_decl()
        expression = self.parse_expression()
        self._expect_op(";")
        return ast.ExprStmt(expression)

    def _parse_var_decl(self) -> ast.Stmt:
        var_type = self.parse_type()
        name = self._expect_ident().text
        if self._accept_op("["):
            length_token = self._advance()
            var_type = ast.TypeName(var_type.base, var_type.pointer_depth,
                                    int(length_token.value), var_type.is_unsigned)
            self._expect_op("]")
        initializer = None
        if self._accept_op("="):
            initializer = self.parse_expression()
        self._expect_op(";")
        return ast.VarDecl(var_type, name, initializer)

    def _parse_if(self) -> ast.IfStmt:
        self._advance()
        self._expect_op("(")
        condition = self.parse_expression()
        self._expect_op(")")
        then_branch = self.parse_statement()
        else_branch = None
        if self._accept_keyword("else"):
            else_branch = self.parse_statement()
        return ast.IfStmt(condition, then_branch, else_branch)

    def _parse_while(self) -> ast.WhileStmt:
        self._advance()
        self._expect_op("(")
        condition = self.parse_expression()
        self._expect_op(")")
        body = self.parse_statement()
        return ast.WhileStmt(condition, body)

    def _parse_for(self) -> ast.ForStmt:
        self._advance()
        self._expect_op("(")
        init: Optional[ast.Stmt] = None
        if not self.current.is_op(";"):
            if self._at_type():
                init = self._parse_var_decl()
            else:
                init = ast.ExprStmt(self.parse_expression())
                self._expect_op(";")
        else:
            self._advance()
        condition = None
        if not self.current.is_op(";"):
            condition = self.parse_expression()
        self._expect_op(";")
        step = None
        if not self.current.is_op(")"):
            step = self.parse_expression()
        self._expect_op(")")
        body = self.parse_statement()
        return ast.ForStmt(init, condition, step, body)

    # -- expressions -------------------------------------------------------------------
    def parse_expression(self) -> ast.Expr:
        return self._parse_assignment()

    def _parse_assignment(self) -> ast.Expr:
        left = self._parse_conditional()
        if self.current.is_op("=") or (self.current.kind == "op"
                                       and self.current.text in COMPOUND_ASSIGN_OPS):
            op = self._advance().text
            value = self._parse_assignment()
            return ast.Assignment(left, value, op)
        return left

    def _parse_conditional(self) -> ast.Expr:
        condition = self._parse_binary(0)
        if self._accept_op("?"):
            then_value = self.parse_expression()
            self._expect_op(":")
            else_value = self._parse_conditional()
            return ast.Conditional(condition, then_value, else_value)
        return condition

    def _parse_binary(self, min_precedence: int) -> ast.Expr:
        left = self._parse_unary()
        while (self.current.kind == "op" and self.current.text in PRECEDENCE
               and PRECEDENCE[self.current.text] >= min_precedence):
            op = self._advance().text
            right = self._parse_binary(PRECEDENCE[op] + 1)
            left = ast.BinaryOp(op, left, right)
        return left

    def _parse_unary(self) -> ast.Expr:
        token = self.current
        if token.kind == "op" and token.text in ("-", "!", "~", "*", "&"):
            self._advance()
            return ast.UnaryOp(token.text, self._parse_unary())
        if token.kind == "op" and token.text in ("++", "--"):
            self._advance()
            return ast.UnaryOp(token.text, self._parse_unary())
        # cast expression: '(' type ')' unary
        if token.is_op("(") and self._is_cast_ahead():
            self._advance()
            target_type = self.parse_type()
            self._expect_op(")")
            return ast.CastExpr(target_type, self._parse_unary())
        if token.is_keyword("sizeof"):
            self._advance()
            self._expect_op("(")
            target_type = self.parse_type()
            self._expect_op(")")
            return ast.SizeofExpr(target_type)
        return self._parse_postfix()

    def _is_cast_ahead(self) -> bool:
        """Heuristic lookahead: '(' followed by a type keyword or known
        struct name is a cast."""
        next_token = self._peek(1)
        if next_token.kind == "keyword" and next_token.text in (
                BUILTIN_TYPE_NAMES | {"struct", "unsigned", "signed"}):
            return True
        if next_token.kind == "ident" and next_token.text in self.struct_names:
            return True
        return False

    def _parse_postfix(self) -> ast.Expr:
        expr = self._parse_primary()
        while True:
            if self._accept_op("["):
                index = self.parse_expression()
                self._expect_op("]")
                expr = ast.IndexExpr(expr, index)
            elif self._accept_op("."):
                member = self._expect_ident().text
                expr = ast.MemberExpr(expr, member, through_pointer=False)
            elif self._accept_op("->"):
                member = self._expect_ident().text
                expr = ast.MemberExpr(expr, member, through_pointer=True)
            elif self.current.kind == "op" and self.current.text in ("++", "--"):
                op = self._advance().text
                expr = ast.UnaryOp(op, expr, postfix=True)
            else:
                return expr

    def _parse_primary(self) -> ast.Expr:
        token = self.current
        if token.kind == "int":
            self._advance()
            return ast.IntLiteral(int(token.value))
        if token.kind == "float":
            self._advance()
            return ast.FloatLiteral(float(token.value))
        if token.kind == "char":
            self._advance()
            return ast.IntLiteral(int(token.value))
        if token.kind == "string":
            self._advance()
            return ast.StringLiteral(str(token.value))
        if token.is_keyword("true"):
            self._advance()
            return ast.BoolLiteral(True)
        if token.is_keyword("false"):
            self._advance()
            return ast.BoolLiteral(False)
        if token.is_keyword("NULL") or token.is_keyword("null"):
            self._advance()
            return ast.NullLiteral()
        if token.kind == "ident":
            name = self._advance().text
            if self.current.is_op("("):
                self._advance()
                args: List[ast.Expr] = []
                if not self.current.is_op(")"):
                    while True:
                        args.append(self.parse_expression())
                        if not self._accept_op(","):
                            break
                self._expect_op(")")
                return ast.CallExpr(name, args)
            return ast.Identifier(name)
        if token.is_op("("):
            self._advance()
            expr = self.parse_expression()
            self._expect_op(")")
            return expr
        raise ParseError("expected an expression", token)


def parse(source: str) -> ast.Program:
    """Parse mini-C source text into a Program AST."""
    return Parser(tokenize(source)).parse_program()
