"""Lowering mini-C ASTs to the mini-IR.

The code generator follows the classic clang -O0 recipe: every local
variable and parameter lives in an ``alloca`` slot, expressions are lowered
to loads/stores around those slots, and control flow is built with explicit
blocks and branches.  No phi nodes are emitted, which matches the FMSA
precondition that input functions have their phis demoted to memory.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..ir import types as ty
from ..ir import values as vals
from ..ir.basicblock import BasicBlock
from ..ir.builder import IRBuilder
from ..ir.function import Function
from ..ir.module import Module
from ..ir.values import Value
from . import ast_nodes as ast
from .parser import parse


class LoweringError(Exception):
    """Raised when the AST cannot be lowered (unknown name, bad types...)."""


BUILTIN_TYPES: Dict[str, ty.Type] = {
    "void": ty.VOID,
    "bool": ty.I1,
    "char": ty.I8,
    "short": ty.I16,
    "int": ty.I32,
    "long": ty.I64,
    "float": ty.FLOAT,
    "double": ty.DOUBLE,
    # convenience aliases used by the case-study sources
    "float32": ty.FLOAT,
    "float64": ty.DOUBLE,
}


class TypeContext:
    """Resolves syntactic :class:`~repro.frontend.ast_nodes.TypeName` objects
    to IR types, including named structs."""

    def __init__(self):
        self.structs: Dict[str, ty.StructType] = {}
        self.struct_fields: Dict[str, List[Tuple[str, ty.Type]]] = {}

    def declare_struct(self, name: str) -> ty.StructType:
        if name not in self.structs:
            self.structs[name] = ty.StructType((), name=name)
            self.struct_fields[name] = []
        return self.structs[name]

    def define_struct(self, decl: ast.StructDecl) -> ty.StructType:
        struct_type = self.declare_struct(decl.name)
        fields: List[Tuple[str, ty.Type]] = []
        for field in decl.fields:
            fields.append((field.name, self.resolve(field.field_type)))
        struct_type.fields = tuple(f for _, f in fields)
        self.struct_fields[decl.name] = fields
        return struct_type

    def field_index(self, struct_type: ty.StructType, member: str) -> Tuple[int, ty.Type]:
        if struct_type.name is None or struct_type.name not in self.struct_fields:
            raise LoweringError(f"unknown struct type {struct_type}")
        for index, (name, field_type) in enumerate(self.struct_fields[struct_type.name]):
            if name == member:
                return index, field_type
        raise LoweringError(f"struct {struct_type.name} has no member {member!r}")

    def resolve(self, type_name: ast.TypeName) -> ty.Type:
        base_name = type_name.base
        if base_name.startswith("struct "):
            resolved: ty.Type = self.declare_struct(base_name[len("struct "):])
        elif base_name in BUILTIN_TYPES:
            resolved = BUILTIN_TYPES[base_name]
        else:
            raise LoweringError(f"unknown type name {base_name!r}")
        for _ in range(type_name.pointer_depth):
            resolved = ty.pointer(resolved)
        if type_name.array_length is not None:
            resolved = ty.array(resolved, type_name.array_length)
        return resolved


class _LoopContext:
    """Targets for ``break``/``continue`` while lowering loop bodies."""

    def __init__(self, break_block: BasicBlock, continue_block: BasicBlock):
        self.break_block = break_block
        self.continue_block = continue_block


class FunctionLowering:
    """Lowers one function body."""

    def __init__(self, compiler: "Compiler", function: Function,
                 decl: ast.FunctionDecl):
        self.compiler = compiler
        self.types = compiler.types
        self.module = compiler.module
        self.function = function
        self.decl = decl
        self.builder = IRBuilder()
        self.scopes: List[Dict[str, Tuple[Value, ty.Type]]] = [{}]
        self.loops: List[_LoopContext] = []

    # -- scope helpers --------------------------------------------------------------
    def push_scope(self) -> None:
        self.scopes.append({})

    def pop_scope(self) -> None:
        self.scopes.pop()

    def declare(self, name: str, slot: Value, var_type: ty.Type) -> None:
        self.scopes[-1][name] = (slot, var_type)

    def lookup(self, name: str) -> Tuple[Value, ty.Type]:
        for scope in reversed(self.scopes):
            if name in scope:
                return scope[name]
        gv = self.module.get_global(name)
        if gv is not None:
            return gv, gv.content_type
        raise LoweringError(f"use of undeclared identifier {name!r} in {self.function.name}")

    # -- entry ------------------------------------------------------------------------
    def lower(self) -> None:
        entry = self.function.append_block("entry")
        self.builder.position_at_end(entry)
        for arg, param in zip(self.function.arguments, self.decl.parameters):
            slot = self.builder.alloca(arg.type, name=f"{param.name or arg.name}.addr")
            self.builder.store(arg, slot)
            self.declare(param.name or arg.name, slot, arg.type)
        assert self.decl.body is not None
        self.lower_block(self.decl.body)
        current = self.builder.block
        if current is not None and not current.is_terminated:
            if self.function.return_type.is_void:
                self.builder.ret_void()
            else:
                self.builder.ret(self._zero(self.function.return_type))

    def _new_block(self, name: str) -> BasicBlock:
        return self.function.append_block(name)

    def _zero(self, vtype: ty.Type) -> Value:
        if vtype.is_float:
            return vals.ConstantFloat(vtype, 0.0)
        if vtype.is_pointer:
            return vals.ConstantNull(vtype)
        if vtype.is_integer:
            return vals.ConstantInt(vtype, 0)
        return vals.undef(vtype)

    # -- statements -----------------------------------------------------------------------
    def lower_block(self, block: ast.Block) -> None:
        self.push_scope()
        for statement in block.statements:
            self.lower_statement(statement)
            if self.builder.block is not None and self.builder.block.is_terminated:
                # dead code after return/break: keep lowering into a fresh
                # unreachable block so the rest still type-checks
                self.builder.position_at_end(self._new_block("dead"))
        self.pop_scope()

    def lower_statement(self, statement: ast.Stmt) -> None:
        if isinstance(statement, ast.Block):
            self.lower_block(statement)
        elif isinstance(statement, ast.VarDecl):
            self._lower_var_decl(statement)
        elif isinstance(statement, ast.ExprStmt):
            self.lower_expression(statement.expression)
        elif isinstance(statement, ast.IfStmt):
            self._lower_if(statement)
        elif isinstance(statement, ast.WhileStmt):
            self._lower_while(statement)
        elif isinstance(statement, ast.ForStmt):
            self._lower_for(statement)
        elif isinstance(statement, ast.ReturnStmt):
            self._lower_return(statement)
        elif isinstance(statement, ast.BreakStmt):
            if not self.loops:
                raise LoweringError("break outside of a loop")
            self.builder.br(self.loops[-1].break_block)
        elif isinstance(statement, ast.ContinueStmt):
            if not self.loops:
                raise LoweringError("continue outside of a loop")
            self.builder.br(self.loops[-1].continue_block)
        else:
            raise LoweringError(f"unsupported statement {type(statement).__name__}")

    def _lower_var_decl(self, decl: ast.VarDecl) -> None:
        var_type = self.types.resolve(decl.var_type)
        slot = self.builder.alloca(var_type, name=f"{decl.name}.addr")
        self.declare(decl.name, slot, var_type)
        if decl.initializer is not None:
            value, value_type = self.lower_expression(decl.initializer)
            value = self.convert(value, value_type, var_type)
            self.builder.store(value, slot)

    def _lower_if(self, statement: ast.IfStmt) -> None:
        condition = self.lower_condition(statement.condition)
        then_block = self._new_block("if.then")
        else_block = self._new_block("if.else") if statement.else_branch else None
        end_block = self._new_block("if.end")
        false_target = else_block if else_block is not None else end_block
        self.builder.cond_br(condition, then_block, false_target)

        self.builder.position_at_end(then_block)
        self.lower_statement(statement.then_branch)
        if not self.builder.block.is_terminated:
            self.builder.br(end_block)

        if else_block is not None:
            self.builder.position_at_end(else_block)
            self.lower_statement(statement.else_branch)
            if not self.builder.block.is_terminated:
                self.builder.br(end_block)

        self.builder.position_at_end(end_block)

    def _lower_while(self, statement: ast.WhileStmt) -> None:
        cond_block = self._new_block("while.cond")
        body_block = self._new_block("while.body")
        end_block = self._new_block("while.end")
        self.builder.br(cond_block)

        self.builder.position_at_end(cond_block)
        condition = self.lower_condition(statement.condition)
        self.builder.cond_br(condition, body_block, end_block)

        self.builder.position_at_end(body_block)
        self.loops.append(_LoopContext(end_block, cond_block))
        self.lower_statement(statement.body)
        self.loops.pop()
        if not self.builder.block.is_terminated:
            self.builder.br(cond_block)

        self.builder.position_at_end(end_block)

    def _lower_for(self, statement: ast.ForStmt) -> None:
        self.push_scope()
        if statement.init is not None:
            self.lower_statement(statement.init)
        cond_block = self._new_block("for.cond")
        body_block = self._new_block("for.body")
        step_block = self._new_block("for.step")
        end_block = self._new_block("for.end")
        self.builder.br(cond_block)

        self.builder.position_at_end(cond_block)
        if statement.condition is not None:
            condition = self.lower_condition(statement.condition)
            self.builder.cond_br(condition, body_block, end_block)
        else:
            self.builder.br(body_block)

        self.builder.position_at_end(body_block)
        self.loops.append(_LoopContext(end_block, step_block))
        self.lower_statement(statement.body)
        self.loops.pop()
        if not self.builder.block.is_terminated:
            self.builder.br(step_block)

        self.builder.position_at_end(step_block)
        if statement.step is not None:
            self.lower_expression(statement.step)
        self.builder.br(cond_block)

        self.builder.position_at_end(end_block)
        self.pop_scope()

    def _lower_return(self, statement: ast.ReturnStmt) -> None:
        if statement.value is None:
            if self.function.return_type.is_void:
                self.builder.ret_void()
            else:
                self.builder.ret(self._zero(self.function.return_type))
            return
        value, value_type = self.lower_expression(statement.value)
        if self.function.return_type.is_void:
            self.builder.ret_void()
            return
        value = self.convert(value, value_type, self.function.return_type)
        self.builder.ret(value)

    # -- conversions -----------------------------------------------------------------------
    def convert(self, value: Value, from_type: ty.Type, to_type: ty.Type) -> Value:
        """Insert the conversion needed to use ``value`` as ``to_type``."""
        if from_type == to_type:
            return value
        if from_type.is_integer and to_type.is_integer:
            if from_type.size_bits() < to_type.size_bits():
                op = "zext" if from_type.size_bits() == 1 else "sext"
                return self.builder.cast(op, value, to_type)
            if from_type.size_bits() > to_type.size_bits():
                return self.builder.trunc(value, to_type)
            return value
        if from_type.is_integer and to_type.is_float:
            return self.builder.sitofp(value, to_type)
        if from_type.is_float and to_type.is_integer:
            return self.builder.fptosi(value, to_type)
        if from_type.is_float and to_type.is_float:
            if from_type.size_bits() < to_type.size_bits():
                return self.builder.fpext(value, to_type)
            return self.builder.fptrunc(value, to_type)
        if from_type.is_pointer and to_type.is_pointer:
            return self.builder.bitcast(value, to_type)
        if from_type.is_pointer and to_type.is_integer:
            return self.builder.cast("ptrtoint", value, to_type)
        if from_type.is_integer and to_type.is_pointer:
            return self.builder.cast("inttoptr", value, to_type)
        raise LoweringError(f"cannot convert {from_type} to {to_type}")

    def to_bool(self, value: Value, value_type: ty.Type) -> Value:
        if value_type == ty.I1:
            return value
        if value_type.is_integer:
            return self.builder.icmp("ne", value, vals.ConstantInt(value_type, 0))
        if value_type.is_float:
            return self.builder.fcmp("one", value, vals.ConstantFloat(value_type, 0.0))
        if value_type.is_pointer:
            return self.builder.icmp("ne", value, vals.ConstantNull(value_type))
        raise LoweringError(f"cannot use {value_type} as a boolean")

    def lower_condition(self, expression: ast.Expr) -> Value:
        value, value_type = self.lower_expression(expression)
        return self.to_bool(value, value_type)

    # -- lvalues ----------------------------------------------------------------------------
    def lower_lvalue(self, expression: ast.Expr) -> Tuple[Value, ty.Type]:
        """Return ``(address, pointee_type)`` for an assignable expression."""
        if isinstance(expression, ast.Identifier):
            slot, var_type = self.lookup(expression.name)
            return slot, var_type
        if isinstance(expression, ast.UnaryOp) and expression.op == "*":
            value, value_type = self.lower_expression(expression.operand)
            if not value_type.is_pointer:
                raise LoweringError("cannot dereference a non-pointer")
            return value, value_type.pointee
        if isinstance(expression, ast.IndexExpr):
            return self._lower_index_address(expression)
        if isinstance(expression, ast.MemberExpr):
            return self._lower_member_address(expression)
        raise LoweringError(f"expression is not assignable: {type(expression).__name__}")

    def _lower_index_address(self, expression: ast.IndexExpr) -> Tuple[Value, ty.Type]:
        index, index_type = self.lower_expression(expression.index)
        index = self.convert(index, index_type, ty.I64)
        # arrays decay to pointers; distinguish by the declared type
        if isinstance(expression.base, ast.Identifier):
            slot, var_type = self.lookup(expression.base.name)
            if isinstance(var_type, ty.ArrayType):
                address = self.builder.gep(var_type, slot,
                                           [vals.const_int(0, 64), index],
                                           result_type=ty.pointer(var_type.element))
                return address, var_type.element
        base, base_type = self.lower_expression(expression.base)
        if not base_type.is_pointer:
            raise LoweringError("cannot index a non-pointer value")
        element = base_type.pointee
        address = self.builder.gep(element, base, [index],
                                   result_type=ty.pointer(element))
        return address, element

    def _lower_member_address(self, expression: ast.MemberExpr) -> Tuple[Value, ty.Type]:
        if expression.through_pointer:
            base, base_type = self.lower_expression(expression.base)
            if not base_type.is_pointer or not isinstance(base_type.pointee, ty.StructType):
                raise LoweringError("'->' requires a pointer to a struct")
            struct_type = base_type.pointee
            base_address = base
        else:
            base_address, struct_type = self.lower_lvalue(expression.base)
            if not isinstance(struct_type, ty.StructType):
                raise LoweringError("'.' requires a struct value")
        index, field_type = self.types.field_index(struct_type, expression.member)
        address = self.builder.gep(struct_type, base_address,
                                   [vals.const_int(0, 64), vals.const_int(index, 32)],
                                   result_type=ty.pointer(field_type))
        return address, field_type

    # -- expressions --------------------------------------------------------------------------
    def lower_expression(self, expression: ast.Expr) -> Tuple[Value, ty.Type]:
        if isinstance(expression, ast.IntLiteral):
            return vals.const_int(expression.value, 32), ty.I32
        if isinstance(expression, ast.FloatLiteral):
            literal_type = ty.FLOAT if expression.is_single else ty.DOUBLE
            return vals.ConstantFloat(literal_type, expression.value), literal_type
        if isinstance(expression, ast.BoolLiteral):
            return vals.const_bool(expression.value), ty.I1
        if isinstance(expression, ast.NullLiteral):
            null_type = ty.pointer(ty.I8)
            return vals.ConstantNull(null_type), null_type
        if isinstance(expression, ast.StringLiteral):
            return vals.ConstantString(expression.value), ty.pointer(ty.I8)
        if isinstance(expression, ast.Identifier):
            return self._lower_identifier(expression)
        if isinstance(expression, ast.UnaryOp):
            return self._lower_unary(expression)
        if isinstance(expression, ast.BinaryOp):
            return self._lower_binary(expression)
        if isinstance(expression, ast.Assignment):
            return self._lower_assignment(expression)
        if isinstance(expression, ast.Conditional):
            return self._lower_conditional(expression)
        if isinstance(expression, ast.CallExpr):
            return self._lower_call(expression)
        if isinstance(expression, ast.IndexExpr):
            address, element_type = self._lower_index_address(expression)
            return self.builder.load(address), element_type
        if isinstance(expression, ast.MemberExpr):
            address, field_type = self._lower_member_address(expression)
            return self.builder.load(address), field_type
        if isinstance(expression, ast.CastExpr):
            target = self.types.resolve(expression.target_type)
            value, value_type = self.lower_expression(expression.operand)
            return self.convert(value, value_type, target), target
        if isinstance(expression, ast.SizeofExpr):
            target = self.types.resolve(expression.target_type)
            return vals.const_int(target.size_bytes(), 64), ty.I64
        raise LoweringError(f"unsupported expression {type(expression).__name__}")

    def _lower_identifier(self, expression: ast.Identifier) -> Tuple[Value, ty.Type]:
        slot, var_type = self.lookup(expression.name)
        if isinstance(var_type, ty.ArrayType):
            # arrays decay to a pointer to their first element
            address = self.builder.gep(var_type, slot,
                                       [vals.const_int(0, 64), vals.const_int(0, 64)],
                                       result_type=ty.pointer(var_type.element))
            return address, ty.pointer(var_type.element)
        return self.builder.load(slot, name=expression.name), var_type

    def _lower_unary(self, expression: ast.UnaryOp) -> Tuple[Value, ty.Type]:
        op = expression.op
        if op == "&":
            address, pointee = self.lower_lvalue(expression.operand)
            return address, ty.pointer(pointee)
        if op == "*":
            value, value_type = self.lower_expression(expression.operand)
            if not value_type.is_pointer:
                raise LoweringError("cannot dereference a non-pointer")
            return self.builder.load(value), value_type.pointee
        if op in ("++", "--"):
            address, value_type = self.lower_lvalue(expression.operand)
            old = self.builder.load(address)
            one: Value
            if value_type.is_float:
                one = vals.ConstantFloat(value_type, 1.0)
                new = self.builder.binary("fadd" if op == "++" else "fsub", old, one)
            elif value_type.is_pointer:
                delta = vals.const_int(1 if op == "++" else -1, 64)
                new = self.builder.gep(value_type.pointee, old, [delta],
                                       result_type=value_type)
            else:
                one = vals.ConstantInt(value_type, 1)
                new = self.builder.binary("add" if op == "++" else "sub", old, one)
            self.builder.store(new, address)
            return (old if expression.postfix else new), value_type
        value, value_type = self.lower_expression(expression.operand)
        if op == "-":
            if value_type.is_float:
                return self.builder.fsub(vals.ConstantFloat(value_type, 0.0), value), value_type
            return self.builder.sub(vals.ConstantInt(value_type, 0), value), value_type
        if op == "!":
            as_bool = self.to_bool(value, value_type)
            return self.builder.binary("xor", as_bool, vals.const_bool(True)), ty.I1
        if op == "~":
            return self.builder.binary("xor", value,
                                       vals.ConstantInt(value_type, -1)), value_type
        raise LoweringError(f"unsupported unary operator {op!r}")

    def _arithmetic_type(self, left_type: ty.Type, right_type: ty.Type) -> ty.Type:
        if left_type.is_pointer:
            return left_type
        if right_type.is_pointer:
            return right_type
        if left_type.is_float or right_type.is_float:
            candidates = [t for t in (left_type, right_type) if t.is_float]
            return max(candidates, key=lambda t: t.size_bits())
        bits = max(left_type.size_bits(), right_type.size_bits(), 32)
        return ty.int_type(bits)

    def _lower_binary(self, expression: ast.BinaryOp) -> Tuple[Value, ty.Type]:
        op = expression.op
        if op in ("&&", "||"):
            return self._lower_short_circuit(expression)

        left, left_type = self.lower_expression(expression.left)
        right, right_type = self.lower_expression(expression.right)

        # pointer arithmetic: ptr +/- int
        if op in ("+", "-") and left_type.is_pointer and right_type.is_integer:
            index = self.convert(right, right_type, ty.I64)
            if op == "-":
                index = self.builder.sub(vals.const_int(0, 64), index)
            result = self.builder.gep(left_type.pointee, left, [index],
                                      result_type=left_type)
            return result, left_type

        if op in ("==", "!=", "<", "<=", ">", ">="):
            return self._lower_comparison(op, left, left_type, right, right_type)

        common = self._arithmetic_type(left_type, right_type)
        left = self.convert(left, left_type, common)
        right = self.convert(right, right_type, common)
        if common.is_float:
            opcode = {"+": "fadd", "-": "fsub", "*": "fmul", "/": "fdiv", "%": "frem"}.get(op)
        else:
            opcode = {"+": "add", "-": "sub", "*": "mul", "/": "sdiv", "%": "srem",
                      "&": "and", "|": "or", "^": "xor", "<<": "shl", ">>": "ashr"}.get(op)
        if opcode is None:
            raise LoweringError(f"unsupported binary operator {op!r} for {common}")
        return self.builder.binary(opcode, left, right), common

    def _lower_comparison(self, op: str, left: Value, left_type: ty.Type,
                          right: Value, right_type: ty.Type) -> Tuple[Value, ty.Type]:
        if left_type.is_pointer or right_type.is_pointer:
            pointer_type = left_type if left_type.is_pointer else right_type
            left = self.convert(left, left_type, pointer_type)
            right = self.convert(right, right_type, pointer_type)
            predicate = {"==": "eq", "!=": "ne", "<": "ult", "<=": "ule",
                         ">": "ugt", ">=": "uge"}[op]
            return self.builder.icmp(predicate, left, right), ty.I1
        common = self._arithmetic_type(left_type, right_type)
        left = self.convert(left, left_type, common)
        right = self.convert(right, right_type, common)
        if common.is_float:
            predicate = {"==": "oeq", "!=": "one", "<": "olt", "<=": "ole",
                         ">": "ogt", ">=": "oge"}[op]
            return self.builder.fcmp(predicate, left, right), ty.I1
        predicate = {"==": "eq", "!=": "ne", "<": "slt", "<=": "sle",
                     ">": "sgt", ">=": "sge"}[op]
        return self.builder.icmp(predicate, left, right), ty.I1

    def _lower_short_circuit(self, expression: ast.BinaryOp) -> Tuple[Value, ty.Type]:
        result_slot = self.builder.alloca(ty.I1, name="sc.result")
        rhs_block = self._new_block("sc.rhs")
        end_block = self._new_block("sc.end")

        left = self.lower_condition(expression.left)
        self.builder.store(left, result_slot)
        if expression.op == "&&":
            self.builder.cond_br(left, rhs_block, end_block)
        else:
            self.builder.cond_br(left, end_block, rhs_block)

        self.builder.position_at_end(rhs_block)
        right = self.lower_condition(expression.right)
        self.builder.store(right, result_slot)
        self.builder.br(end_block)

        self.builder.position_at_end(end_block)
        return self.builder.load(result_slot), ty.I1

    def _lower_conditional(self, expression: ast.Conditional) -> Tuple[Value, ty.Type]:
        condition = self.lower_condition(expression.condition)
        then_block = self._new_block("cond.then")
        else_block = self._new_block("cond.else")
        end_block = self._new_block("cond.end")
        self.builder.cond_br(condition, then_block, else_block)

        self.builder.position_at_end(then_block)
        then_value, then_type = self.lower_expression(expression.then_value)
        then_exit = self.builder.block

        self.builder.position_at_end(else_block)
        else_value, else_type = self.lower_expression(expression.else_value)
        else_exit = self.builder.block

        result_type = self._arithmetic_type(then_type, else_type) \
            if not (then_type.is_pointer and else_type.is_pointer) else then_type

        # the result slot must dominate both arms, so allocate it in the
        # function's entry block
        from ..ir.instructions import Alloca
        slot = Alloca(result_type, name="cond.slot")
        self.function.entry_block.insert(0, slot)

        self.builder.position_at_end(then_exit)
        converted = self.convert(then_value, then_type, result_type)
        self.builder.store(converted, slot)
        self.builder.br(end_block)

        self.builder.position_at_end(else_exit)
        converted = self.convert(else_value, else_type, result_type)
        self.builder.store(converted, slot)
        self.builder.br(end_block)

        self.builder.position_at_end(end_block)
        return self.builder.load(slot), result_type

    def _lower_assignment(self, expression: ast.Assignment) -> Tuple[Value, ty.Type]:
        address, target_type = self.lower_lvalue(expression.target)
        if expression.op == "=":
            value, value_type = self.lower_expression(expression.value)
            value = self.convert(value, value_type, target_type)
        else:
            binary_op = expression.op[:-1]
            synthetic = ast.BinaryOp(binary_op, expression.target, expression.value)
            value, value_type = self._lower_binary(synthetic)
            value = self.convert(value, value_type, target_type)
        self.builder.store(value, address)
        return value, target_type

    def _lower_call(self, expression: ast.CallExpr) -> Tuple[Value, ty.Type]:
        args: List[Tuple[Value, ty.Type]] = [self.lower_expression(a) for a in expression.args]
        callee = self.compiler.get_or_declare_function(
            expression.callee, [t for _, t in args])
        fnty = callee.function_type
        converted: List[Value] = []
        for (value, value_type), want in zip(args, fnty.param_types):
            converted.append(self.convert(value, value_type, want))
        # extra args beyond declared parameters (varargs style) pass through
        converted.extend(v for (v, _), __ in zip(args[len(fnty.param_types):],
                                                 range(len(args) - len(fnty.param_types))))
        call = self.builder.call(callee, converted)
        return call, fnty.return_type


class Compiler:
    """Compiles a mini-C translation unit into a :class:`Module`."""

    def __init__(self, module_name: str = "program", internalize: bool = True):
        self.module = Module(module_name)
        self.types = TypeContext()
        #: When True, defined functions other than ``main`` get internal
        #: linkage, modelling the whole-program (LTO) setting of the paper.
        self.internalize = internalize
        self._declarations: Dict[str, ast.FunctionDecl] = {}

    # -- public API -------------------------------------------------------------------
    def compile(self, program: ast.Program) -> Module:
        for struct in program.structs:
            self.types.declare_struct(struct.name)
        for struct in program.structs:
            self.types.define_struct(struct)
        for global_var in program.globals:
            self._lower_global(global_var)
        # declare every function first so calls and recursion resolve
        for function_decl in program.functions:
            self._declare_function(function_decl)
        for function_decl in program.functions:
            if function_decl.body is not None:
                function = self.module.get_function(function_decl.name)
                assert function is not None
                FunctionLowering(self, function, function_decl).lower()
        return self.module

    def compile_source(self, source: str) -> Module:
        return self.compile(parse(source))

    # -- helpers ------------------------------------------------------------------------
    def _lower_global(self, decl: ast.GlobalVarDecl) -> None:
        content_type = self.types.resolve(decl.var_type)
        initializer = None
        if isinstance(decl.initializer, ast.IntLiteral):
            if content_type.is_integer:
                initializer = vals.ConstantInt(content_type, decl.initializer.value)
            elif content_type.is_float:
                initializer = vals.ConstantFloat(content_type, float(decl.initializer.value))
        elif isinstance(decl.initializer, ast.FloatLiteral) and content_type.is_float:
            initializer = vals.ConstantFloat(content_type, decl.initializer.value)
        self.module.add_global(decl.name, content_type, initializer)

    def _declare_function(self, decl: ast.FunctionDecl) -> Function:
        existing = self.module.get_function(decl.name)
        if existing is not None:
            return existing
        return_type = self.types.resolve(decl.return_type)
        param_types = [self.types.resolve(p.param_type) for p in decl.parameters]
        fnty = ty.function_type(return_type, param_types)
        if decl.body is None:
            linkage = "external"
        elif decl.name == "main" or not self.internalize:
            linkage = "external"
        else:
            linkage = "internal"
        function = self.module.create_function(
            decl.name, fnty, linkage=linkage,
            arg_names=[p.name or f"arg{i}" for i, p in enumerate(decl.parameters)])
        self._declarations[decl.name] = decl
        return function

    def get_or_declare_function(self, name: str,
                                arg_types: List[ty.Type]) -> Function:
        """Find a function by name, auto-declaring unknown callees as external
        functions with the observed argument types and an ``int`` result."""
        function = self.module.get_function(name)
        if function is not None:
            return function
        fnty = ty.function_type(ty.I32, arg_types)
        return self.module.create_function(name, fnty, linkage="external")


def compile_source(source: str, module_name: str = "program",
                   internalize: bool = True) -> Module:
    """Compile mini-C source text into an IR module."""
    return Compiler(module_name, internalize).compile_source(source)
