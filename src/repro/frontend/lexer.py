"""Lexer for the mini-C language used by the case-study programs.

The language is a practical subset of C sufficient to express the paper's
motivating examples (Figures 1 and 2), the rijndael-style kernels and the
example programs: functions, structs, pointers, arrays, arithmetic, control
flow and calls.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional


class LexerError(Exception):
    """Raised on an unrecognised character or malformed literal."""

    def __init__(self, message: str, line: int, column: int):
        super().__init__(f"{line}:{column}: {message}")
        self.line = line
        self.column = column


KEYWORDS = {
    "void", "int", "long", "short", "char", "float", "double", "bool",
    "unsigned", "signed", "struct", "return", "if", "else", "while", "for",
    "do", "break", "continue", "sizeof", "extern", "static", "true", "false",
    "NULL", "null",
}

#: Multi-character operators, longest first so maximal munch works.
MULTI_CHAR_OPERATORS = [
    "<<=", ">>=", "->", "++", "--", "<<", ">>", "<=", ">=", "==", "!=",
    "&&", "||", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=",
]

SINGLE_CHAR_OPERATORS = "+-*/%<>=!&|^~?:;,.(){}[]"


@dataclass
class Token:
    """A single lexical token."""

    kind: str          # 'ident', 'keyword', 'int', 'float', 'string', 'char', 'op', 'eof'
    text: str
    line: int
    column: int
    value: object = None

    def is_op(self, text: str) -> bool:
        return self.kind == "op" and self.text == text

    def is_keyword(self, text: str) -> bool:
        return self.kind == "keyword" and self.text == text

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Token({self.kind}, {self.text!r})"


class Lexer:
    """Converts source text into a token stream."""

    def __init__(self, source: str):
        self.source = source
        self.position = 0
        self.line = 1
        self.column = 1

    def _error(self, message: str) -> LexerError:
        return LexerError(message, self.line, self.column)

    def _peek(self, offset: int = 0) -> str:
        index = self.position + offset
        return self.source[index] if index < len(self.source) else ""

    def _advance(self, count: int = 1) -> str:
        text = self.source[self.position:self.position + count]
        for ch in text:
            if ch == "\n":
                self.line += 1
                self.column = 1
            else:
                self.column += 1
        self.position += count
        return text

    def _skip_whitespace_and_comments(self) -> None:
        while self.position < len(self.source):
            ch = self._peek()
            if ch in " \t\r\n":
                self._advance()
            elif ch == "/" and self._peek(1) == "/":
                while self.position < len(self.source) and self._peek() != "\n":
                    self._advance()
            elif ch == "/" and self._peek(1) == "*":
                self._advance(2)
                while self.position < len(self.source) and not (
                        self._peek() == "*" and self._peek(1) == "/"):
                    self._advance()
                if self.position >= len(self.source):
                    raise self._error("unterminated block comment")
                self._advance(2)
            elif ch == "#":
                # preprocessor lines are ignored (the examples use #include)
                while self.position < len(self.source) and self._peek() != "\n":
                    self._advance()
            else:
                return

    def tokens(self) -> List[Token]:
        result = list(self._iter_tokens())
        return result

    def _iter_tokens(self) -> Iterator[Token]:
        while True:
            self._skip_whitespace_and_comments()
            if self.position >= len(self.source):
                yield Token("eof", "", self.line, self.column)
                return
            yield self._next_token()

    def _next_token(self) -> Token:
        line, column = self.line, self.column
        ch = self._peek()

        if ch.isalpha() or ch == "_":
            text = self._lex_identifier()
            kind = "keyword" if text in KEYWORDS else "ident"
            return Token(kind, text, line, column)

        if ch.isdigit() or (ch == "." and self._peek(1).isdigit()):
            return self._lex_number(line, column)

        if ch == '"':
            return self._lex_string(line, column)

        if ch == "'":
            return self._lex_char(line, column)

        for op in MULTI_CHAR_OPERATORS:
            if self.source.startswith(op, self.position):
                self._advance(len(op))
                return Token("op", op, line, column)

        if ch in SINGLE_CHAR_OPERATORS:
            self._advance()
            return Token("op", ch, line, column)

        raise self._error(f"unexpected character {ch!r}")

    def _lex_identifier(self) -> str:
        start = self.position
        while self._peek().isalnum() or self._peek() == "_":
            self._advance()
        return self.source[start:self.position]

    def _lex_number(self, line: int, column: int) -> Token:
        start = self.position
        is_float = False
        if self._peek() == "0" and self._peek(1) in ("x", "X"):
            self._advance(2)
            while self._peek() and self._peek() in "0123456789abcdefABCDEF":
                self._advance()
            text = self.source[start:self.position]
            return Token("int", text, line, column, value=int(text, 16))
        while self._peek().isdigit():
            self._advance()
        if self._peek() == "." and self._peek(1).isdigit():
            is_float = True
            self._advance()
            while self._peek().isdigit():
                self._advance()
        if self._peek() in ("e", "E") and (self._peek(1).isdigit()
                                           or self._peek(1) in ("+", "-")):
            is_float = True
            self._advance()
            if self._peek() in ("+", "-"):
                self._advance()
            while self._peek().isdigit():
                self._advance()
        text = self.source[start:self.position]
        # float/long suffixes
        while self._peek() and self._peek() in "fFlLuU":
            suffix = self._advance()
            if suffix in ("f", "F"):
                is_float = True
        if is_float:
            return Token("float", text, line, column, value=float(text))
        return Token("int", text, line, column, value=int(text, 10))

    def _lex_string(self, line: int, column: int) -> Token:
        self._advance()  # opening quote
        chars: List[str] = []
        while True:
            ch = self._peek()
            if ch == "":
                raise self._error("unterminated string literal")
            if ch == '"':
                self._advance()
                break
            if ch == "\\":
                self._advance()
                escape = self._advance()
                chars.append({"n": "\n", "t": "\t", "0": "\0", '"': '"', "\\": "\\"}
                             .get(escape, escape))
                continue
            chars.append(self._advance())
        text = "".join(chars)
        return Token("string", text, line, column, value=text)

    def _lex_char(self, line: int, column: int) -> Token:
        self._advance()  # opening quote
        ch = self._advance()
        if ch == "\\":
            escape = self._advance()
            ch = {"n": "\n", "t": "\t", "0": "\0", "'": "'", "\\": "\\"}.get(escape, escape)
        if self._peek() != "'":
            raise self._error("unterminated character literal")
        self._advance()
        return Token("char", ch, line, column, value=ord(ch))


def tokenize(source: str) -> List[Token]:
    """Tokenize mini-C source text."""
    return Lexer(source).tokens()
