"""Unit tests for incremental CallGraph maintenance: every add / remove /
register / unregister sequence must leave the graph element-wise equal to a
from-scratch rebuild of the same module."""

from repro.ir import IRBuilder, Module
from repro.ir import types as ty
from repro.ir import values as vals
from repro.ir.callgraph import CallGraph


def assert_matches_rebuild(graph, module):
    fresh = CallGraph(module)
    assert graph.callees == fresh.callees
    assert graph.callers == fresh.callers
    assert graph.address_taken == fresh.address_taken
    for name in set(graph.call_sites) | set(fresh.call_sites):
        live = {id(s) for s in graph.call_sites.get(name, ())
                if s.parent is not None}
        assert live == {id(s) for s in fresh.call_sites.get(name, ())}


def make_fn(module, name, callees=(), address_of=None):
    fn = module.create_function(name, ty.function_type(ty.I32, [ty.I32]))
    builder = IRBuilder(fn.append_block("entry"))
    value = fn.arguments[0]
    for callee in callees:
        value = builder.call(callee, [value])
    if address_of is not None:
        # store a function's address: a non-callee, address-taking use
        builder.store(address_of, builder.alloca(address_of.type))
    builder.ret(value)
    return fn


class TestIncrementalUpdates:
    def test_add_function_with_calls(self):
        module = Module("m")
        callee = make_fn(module, "callee")
        graph = CallGraph(module)
        caller = make_fn(module, "caller", [callee, callee])
        graph.add_function(caller)
        assert_matches_rebuild(graph, module)
        assert graph.callers.get("callee") == {"caller"}
        assert len(graph.direct_call_sites(callee)) == 2

    def test_remove_function_drops_edges_and_sites(self):
        module = Module("m")
        callee = make_fn(module, "callee")
        caller = make_fn(module, "caller", [callee])
        graph = CallGraph(module)
        graph.remove_function(caller)
        module.remove_function(caller)
        assert_matches_rebuild(graph, module)
        assert graph.callers.get("callee") == set()
        assert "caller" not in graph.callees

    def test_multi_edge_refcounting(self):
        # two call sites realise one edge; dropping one keeps the edge
        module = Module("m")
        callee = make_fn(module, "callee")
        caller = make_fn(module, "caller", [callee, callee])
        graph = CallGraph(module)
        site = graph.direct_call_sites(callee)[0]
        graph.unregister_instruction("caller", site)
        site.erase_from_parent()
        assert graph.callers.get("callee") == {"caller"}
        assert_matches_rebuild(graph, module)
        remaining = graph.direct_call_sites(callee)[0]
        graph.unregister_instruction("caller", remaining)
        remaining.erase_from_parent()
        assert graph.callers.get("callee") == set()
        assert_matches_rebuild(graph, module)

    def test_body_replacement_roundtrip(self):
        module = Module("m")
        a = make_fn(module, "a")
        b = make_fn(module, "b")
        caller = make_fn(module, "caller", [a])
        graph = CallGraph(module)
        # rebuild caller's body to call b instead of a
        graph.unregister_body(caller)
        caller.drop_body()
        builder = IRBuilder(caller.append_block("entry"))
        builder.ret(builder.call(b, [caller.arguments[0]]))
        graph.register_body(caller)
        assert_matches_rebuild(graph, module)
        assert graph.callees.get("caller") == {"b"}
        assert graph.callers.get("a") == set()

    def test_address_taken_counting(self):
        module = Module("m")
        target = make_fn(module, "target")
        user1 = make_fn(module, "user1", address_of=target)
        make_fn(module, "user2", address_of=target)
        graph = CallGraph(module)
        assert graph.is_address_taken(target)
        # dropping one of two takers keeps the flag
        graph.unregister_body(user1)
        user1.drop_body()
        builder = IRBuilder(user1.append_block("entry"))
        builder.ret(user1.arguments[0])
        graph.register_body(user1)
        assert graph.is_address_taken(target)
        assert_matches_rebuild(graph, module)

    def test_address_taken_set_clears_with_last_reference(self):
        module = Module("m")
        target = make_fn(module, "target")
        user = make_fn(module, "user", address_of=target)
        graph = CallGraph(module)
        assert graph.is_address_taken(target)
        graph.unregister_body(user)
        user.drop_body()
        builder = IRBuilder(user.append_block("entry"))
        builder.ret(user.arguments[0])
        graph.register_body(user)
        # the live-reference set empties, exactly like a rebuild's would;
        # the function's sticky address_taken attribute stays (rebuild
        # semantics: set for current takers, never cleared)
        assert not graph.is_address_taken(target)
        assert target.address_taken is True
        assert_matches_rebuild(graph, module)

    def test_function_argument_passed_as_data_is_address_taken(self):
        module = Module("m")
        target = make_fn(module, "target")
        fn = module.create_function("indirect", ty.function_type(ty.I32, [ty.I32]))
        builder = IRBuilder(fn.append_block("entry"))
        call = builder.call(target, [fn.arguments[0]])
        graph = CallGraph(module)
        assert not graph.is_address_taken(target)
        # a call passing a *function* as a non-callee operand takes its address
        taker = module.create_function("taker", ty.function_type(ty.I32, [ty.I32]))
        tb = IRBuilder(taker.append_block("entry"))
        site = tb.call(target, [taker.arguments[0]])
        tb.ret(site)
        graph.add_function(taker)
        assert_matches_rebuild(graph, module)
        builder.ret(call)

    def test_rebuild_resets_incremental_state(self):
        module = Module("m")
        callee = make_fn(module, "callee")
        make_fn(module, "caller", [callee])
        graph = CallGraph(module)
        graph.rebuild()
        graph.rebuild()  # idempotent: counts must not accumulate
        assert_matches_rebuild(graph, module)
        assert len(graph.direct_call_sites(callee)) == 1
