"""Tests for the IRBuilder and the textual printer."""

from repro.ir import IRBuilder, Module, function_to_str, module_to_str
from repro.ir import types as ty
from repro.ir import values as vals


def _fresh_function(return_type=ty.I32, params=(ty.I32, ty.I32)):
    module = Module("m")
    function = module.create_function("f", ty.function_type(return_type, list(params)),
                                      arg_names=["a", "b"][:len(params)])
    block = function.append_block("entry")
    return module, function, IRBuilder(block)


class TestBuilder:
    def test_arithmetic_helpers(self):
        _, function, builder = _fresh_function()
        a, b = function.arguments
        assert builder.add(a, b).opcode == "add"
        assert builder.sub(a, b).opcode == "sub"
        assert builder.mul(a, b).opcode == "mul"
        assert builder.sdiv(a, b).opcode == "sdiv"

    def test_float_helpers(self):
        _, function, builder = _fresh_function(ty.DOUBLE, (ty.DOUBLE, ty.DOUBLE))
        a, b = function.arguments
        for name in ("fadd", "fsub", "fmul", "fdiv"):
            assert getattr(builder, name)(a, b).opcode == name

    def test_memory_helpers(self):
        _, function, builder = _fresh_function()
        slot = builder.alloca(ty.I32, "x")
        builder.store(function.arguments[0], slot)
        load = builder.load(slot)
        assert load.type == ty.I32
        assert slot.type == ty.pointer(ty.I32)

    def test_control_flow_helpers(self):
        module, function, builder = _fresh_function()
        then_block = function.append_block("then")
        else_block = function.append_block("else")
        cond = builder.icmp("eq", function.arguments[0], function.arguments[1])
        builder.cond_br(cond, then_block, else_block)
        IRBuilder(then_block).ret(vals.const_int(1))
        IRBuilder(else_block).ret(vals.const_int(0))
        assert function.entry_block.terminator.opcode == "br"

    def test_cast_helpers(self):
        _, function, builder = _fresh_function()
        a = function.arguments[0]
        assert builder.sext(a, ty.I64).type == ty.I64
        assert builder.trunc(a, ty.I8).type == ty.I8
        assert builder.sitofp(a, ty.DOUBLE).type == ty.DOUBLE
        assert builder.bitcast(builder.alloca(ty.I32), ty.pointer(ty.FLOAT)).type == \
            ty.pointer(ty.FLOAT)

    def test_position_before(self):
        _, function, builder = _fresh_function()
        a, b = function.arguments
        first = builder.add(a, b)
        ret = builder.ret(first)
        builder.position_before(ret)
        inserted = builder.mul(a, b)
        block = function.entry_block
        assert block.instructions.index(inserted) == 1
        assert block.instructions.index(ret) == 2

    def test_insert_requires_block(self):
        builder = IRBuilder()
        try:
            builder.ret_void()
            assert False, "expected RuntimeError"
        except RuntimeError:
            pass

    def test_switch_and_phi(self):
        module, function, builder = _fresh_function()
        other = function.append_block("other")
        done = function.append_block("done")
        builder.switch(function.arguments[0], other, [(vals.const_int(1), done)])
        phi_builder = IRBuilder(done)
        phi = phi_builder.phi(ty.I32, "p")
        phi.add_incoming(vals.const_int(3), function.entry_block)
        phi_builder.ret(phi)
        IRBuilder(other).ret(vals.const_int(0))
        assert function.entry_block.terminator.opcode == "switch"


class TestPrinter:
    def test_function_str_contains_header_and_instructions(self):
        _, function, builder = _fresh_function()
        a, b = function.arguments
        builder.ret(builder.add(a, b))
        text = function_to_str(function)
        assert "define internal i32 @f(i32 %a, i32 %b)" in text
        assert "add i32 %a, i32 %b" in text
        assert text.strip().endswith("}")

    def test_declaration_printed_as_declare(self):
        module = Module()
        module.create_function("ext", ty.function_type(ty.VOID, [ty.I32]),
                               linkage="external")
        assert "declare void @ext" in module_to_str(module)

    def test_unnamed_values_get_stable_numbers(self):
        _, function, builder = _fresh_function()
        a, b = function.arguments
        builder.ret(builder.add(builder.add(a, b), b))
        text1 = function_to_str(function)
        text2 = function_to_str(function)
        assert text1 == text2

    def test_module_str_includes_globals(self):
        module = Module("g")
        module.add_global("counter", ty.I64, vals.ConstantInt(ty.I64, 3))
        text = module_to_str(module)
        assert "@counter" in text

    def test_constant_rendering(self):
        _, function, builder = _fresh_function(ty.DOUBLE, (ty.DOUBLE,))
        builder.ret(builder.fadd(function.arguments[0], vals.const_float(2.5)))
        text = function_to_str(function)
        assert "2.5" in text

    def test_branch_and_label_rendering(self):
        module, function, builder = _fresh_function()
        target = function.append_block("target")
        builder.br(target)
        IRBuilder(target).ret(vals.const_int(0))
        text = function_to_str(function)
        assert "br label %target" in text
        assert "target:" in text
