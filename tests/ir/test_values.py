"""Unit tests for values, constants and use-def tracking."""

from repro.ir import types as ty
from repro.ir import values as vals
from repro.ir.instructions import BinaryOperator


class TestConstants:
    def test_const_int_wraps_to_width(self):
        c = vals.ConstantInt(ty.I8, 300)
        assert c.value == 300 & 0xFF
        assert c.signed_value == 44

    def test_const_int_signed_view(self):
        c = vals.ConstantInt(ty.I8, -1)
        assert c.value == 255
        assert c.signed_value == -1

    def test_const_bool(self):
        assert vals.const_bool(True).value == 1
        assert vals.const_bool(False).value == 0
        assert vals.const_bool(True).type == ty.I1

    def test_constant_equality_by_type_and_value(self):
        assert vals.const_int(5) == vals.const_int(5)
        assert vals.const_int(5) != vals.const_int(6)
        assert vals.const_int(5, 32) != vals.const_int(5, 64)
        assert vals.const_float(1.5) == vals.const_float(1.5)

    def test_constants_hashable(self):
        constants = {vals.const_int(1), vals.const_int(1), vals.const_int(2)}
        assert len(constants) == 2

    def test_undef_and_null(self):
        undef = vals.undef(ty.I32)
        assert undef.type == ty.I32
        null = vals.const_null(ty.I8)
        assert null.type == ty.pointer(ty.I8)

    def test_is_constant_flag(self):
        assert vals.const_int(1).is_constant
        assert not vals.Argument(ty.I32, "a", 0).is_constant


class TestUseDef:
    def test_users_tracked_on_construction(self):
        a = vals.Argument(ty.I32, "a", 0)
        b = vals.Argument(ty.I32, "b", 1)
        inst = BinaryOperator("add", a, b)
        assert inst in a.users
        assert inst in b.users

    def test_set_operand_updates_users(self):
        a = vals.Argument(ty.I32, "a", 0)
        b = vals.Argument(ty.I32, "b", 1)
        c = vals.Argument(ty.I32, "c", 2)
        inst = BinaryOperator("add", a, b)
        inst.set_operand(0, c)
        assert inst not in a.users
        assert inst in c.users

    def test_replace_all_uses_with(self):
        a = vals.Argument(ty.I32, "a", 0)
        b = vals.Argument(ty.I32, "b", 1)
        c = vals.Argument(ty.I32, "c", 2)
        add = BinaryOperator("add", a, b)
        mul = BinaryOperator("mul", a, a)
        a.replace_all_uses_with(c)
        assert add.operands[0] is c
        assert mul.operands[0] is c and mul.operands[1] is c
        assert not a.users

    def test_replace_all_uses_with_self_is_noop(self):
        a = vals.Argument(ty.I32, "a", 0)
        inst = BinaryOperator("add", a, a)
        a.replace_all_uses_with(a)
        assert inst.operands == [a, a]

    def test_drop_all_operands(self):
        a = vals.Argument(ty.I32, "a", 0)
        inst = BinaryOperator("add", a, a)
        inst.drop_all_operands()
        assert not a.users
        assert inst.operands == []

    def test_global_variable_is_pointer_valued(self):
        gv = vals.GlobalVariable("counter", ty.I64)
        assert gv.type == ty.pointer(ty.I64)
        assert gv.content_type == ty.I64
