"""Unit tests for the IR type system."""

import pytest

from repro.ir import types as ty


class TestScalarTypes:
    def test_int_width_and_str(self):
        assert ty.I32.bits == 32
        assert str(ty.I32) == "i32"
        assert str(ty.IntType(7)) == "i7"

    def test_int_invalid_width(self):
        with pytest.raises(ValueError):
            ty.IntType(0)

    def test_float_widths(self):
        assert str(ty.FLOAT) == "float"
        assert str(ty.DOUBLE) == "double"
        with pytest.raises(ValueError):
            ty.FloatType(20)

    def test_void_properties(self):
        assert ty.VOID.is_void
        assert not ty.VOID.is_first_class
        assert ty.VOID.size_bits() == 0

    def test_structural_equality(self):
        assert ty.IntType(32) == ty.I32
        assert ty.IntType(32) != ty.IntType(64)
        assert ty.FloatType(32) != ty.IntType(32)

    def test_hashable(self):
        bucket = {ty.I32: "a", ty.FLOAT: "b"}
        assert bucket[ty.IntType(32)] == "a"
        assert bucket[ty.FloatType(32)] == "b"

    def test_int_type_factory_returns_singletons(self):
        assert ty.int_type(32) is ty.I32
        assert ty.int_type(8) is ty.I8
        assert ty.int_type(17).bits == 17


class TestDerivedTypes:
    def test_pointer_size_and_equality(self):
        p = ty.pointer(ty.I32)
        assert p.size_bits() == ty.POINTER_BITS
        assert p == ty.pointer(ty.I32)
        assert p != ty.pointer(ty.I64)
        assert str(p) == "i32*"

    def test_array_size(self):
        a = ty.array(ty.I32, 10)
        assert a.size_bits() == 320
        assert a.size_bytes() == 40
        assert str(a) == "[10 x i32]"

    def test_array_negative_length_rejected(self):
        with pytest.raises(ValueError):
            ty.array(ty.I8, -1)

    def test_struct_layout(self):
        s = ty.struct([ty.I32, ty.DOUBLE, ty.I8], name="mix")
        assert s.size_bytes() == 4 + 8 + 1
        assert s.field_offset_bytes(0) == 0
        assert s.field_offset_bytes(1) == 4
        assert s.field_offset_bytes(2) == 12

    def test_named_struct_identity_by_name(self):
        a = ty.struct([ty.I32], name="node")
        b = ty.struct([ty.I64, ty.I64], name="node")
        assert a == b  # named structs compare by name
        anon1 = ty.struct([ty.I32])
        anon2 = ty.struct([ty.I32])
        assert anon1 == anon2

    def test_function_type(self):
        f = ty.function_type(ty.I32, [ty.I32, ty.DOUBLE])
        assert f.return_type == ty.I32
        assert f.param_types == (ty.I32, ty.DOUBLE)
        assert f == ty.function_type(ty.I32, [ty.I32, ty.DOUBLE])
        assert f != ty.function_type(ty.I32, [ty.DOUBLE, ty.I32])

    def test_function_type_vararg_distinct(self):
        f1 = ty.function_type(ty.VOID, [ty.I32])
        f2 = ty.function_type(ty.VOID, [ty.I32], is_vararg=True)
        assert f1 != f2


class TestBitcastEquivalence:
    def test_identical_types(self):
        assert ty.can_losslessly_bitcast(ty.I32, ty.I32)

    def test_pointers_always_castable(self):
        assert ty.can_losslessly_bitcast(ty.pointer(ty.I8), ty.pointer(ty.DOUBLE))

    def test_same_width_scalars(self):
        assert ty.can_losslessly_bitcast(ty.I32, ty.FLOAT)
        assert ty.can_losslessly_bitcast(ty.I64, ty.DOUBLE)

    def test_different_width_rejected(self):
        assert not ty.can_losslessly_bitcast(ty.I32, ty.I64)
        assert not ty.can_losslessly_bitcast(ty.FLOAT, ty.DOUBLE)

    def test_void_and_label_not_castable(self):
        assert not ty.can_losslessly_bitcast(ty.VOID, ty.I32)
        assert not ty.can_losslessly_bitcast(ty.LABEL, ty.LABEL) or ty.LABEL == ty.LABEL

    def test_aggregates_not_castable(self):
        s = ty.struct([ty.I32], name="s")
        assert not ty.can_losslessly_bitcast(s, ty.I32)

    def test_larger_type(self):
        assert ty.larger_type(ty.I32, ty.I64) == ty.I64
        assert ty.larger_type(ty.DOUBLE, ty.FLOAT) == ty.DOUBLE
        assert ty.larger_type(ty.VOID, ty.I32) == ty.I32
        assert ty.larger_type(ty.I32, ty.VOID) == ty.I32
        # ties favour the first argument
        assert ty.larger_type(ty.FLOAT, ty.I32) == ty.FLOAT
