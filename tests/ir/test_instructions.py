"""Unit tests for the instruction classes."""

import pytest

from repro.ir import types as ty
from repro.ir import values as vals
from repro.ir.basicblock import BasicBlock
from repro.ir.instructions import (ALL_OPCODES, Alloca, BinaryOperator, Branch,
                                   Call, Cast, FCmp, GetElementPtr, ICmp,
                                   Instruction, LandingPad, Load, Phi, Return,
                                   Select, Store, Switch, Unreachable)
from repro.ir.function import Function
from repro.ir.module import Module


def _args(n=2, bits=32):
    return [vals.Argument(ty.int_type(bits), f"a{i}", i) for i in range(n)]


class TestConstruction:
    def test_unknown_opcode_rejected(self):
        with pytest.raises(ValueError):
            Instruction("frobnicate", ty.I32)

    def test_binary_result_type_follows_lhs(self):
        a, b = _args()
        inst = BinaryOperator("add", a, b)
        assert inst.type == ty.I32
        assert inst.lhs is a and inst.rhs is b

    def test_binary_rejects_non_binary_opcode(self):
        a, b = _args()
        with pytest.raises(ValueError):
            BinaryOperator("icmp", a, b)

    def test_icmp_produces_i1_and_checks_predicate(self):
        a, b = _args()
        inst = ICmp("slt", a, b)
        assert inst.type == ty.I1
        assert inst.predicate == "slt"
        with pytest.raises(ValueError):
            ICmp("bogus", a, b)

    def test_fcmp_predicates(self):
        a = vals.const_float(1.0)
        b = vals.const_float(2.0)
        assert FCmp("olt", a, b).predicate == "olt"
        with pytest.raises(ValueError):
            FCmp("slt", a, b)

    def test_alloca_result_is_pointer(self):
        inst = Alloca(ty.I64)
        assert inst.type == ty.pointer(ty.I64)
        assert inst.allocated_type == ty.I64

    def test_load_requires_pointer(self):
        with pytest.raises(TypeError):
            Load(vals.const_int(3))
        pointer = Alloca(ty.I32)
        assert Load(pointer).type == ty.I32

    def test_store_is_void(self):
        pointer = Alloca(ty.I32)
        store = Store(vals.const_int(1), pointer)
        assert store.type.is_void
        assert store.value_operand.is_constant
        assert store.pointer_operand is pointer

    def test_gep_accessors(self):
        pointer = Alloca(ty.array(ty.I32, 4))
        gep = GetElementPtr(ty.array(ty.I32, 4), pointer,
                            [vals.const_int(0, 64), vals.const_int(2, 64)],
                            ty.pointer(ty.I32))
        assert gep.base_pointer is pointer
        assert len(gep.indices) == 2
        assert gep.source_type == ty.array(ty.I32, 4)

    def test_branch_shapes(self):
        b1, b2 = BasicBlock("a"), BasicBlock("b")
        cond = vals.const_bool(True)
        uncond = Branch(b1)
        assert not uncond.is_conditional
        assert uncond.targets() == [b1]
        conditional = Branch(cond, b1, b2)
        assert conditional.is_conditional
        assert conditional.condition is cond
        with pytest.raises(ValueError):
            Branch(cond, b1)

    def test_switch_cases(self):
        b_default, b_one = BasicBlock("d"), BasicBlock("one")
        switch = Switch(vals.const_int(1), b_default, [(vals.const_int(1), b_one)])
        assert switch.default_dest is b_default
        assert switch.cases()[0][1] is b_one
        switch.add_case(vals.const_int(2), b_default)
        assert len(switch.cases()) == 2

    def test_return_with_and_without_value(self):
        assert Return().return_value is None
        assert Return(vals.const_int(3)).return_value == vals.const_int(3)

    def test_select_type(self):
        sel = Select(vals.const_bool(True), vals.const_int(1), vals.const_int(2))
        assert sel.type == ty.I32
        assert sel.true_value == vals.const_int(1)

    def test_cast_checks_opcode(self):
        with pytest.raises(ValueError):
            Cast("add", vals.const_int(1), ty.I64)
        cast = Cast("sext", vals.const_int(1), ty.I64)
        assert cast.type == ty.I64

    def test_phi_incoming(self):
        phi = Phi(ty.I32)
        b1, b2 = BasicBlock("a"), BasicBlock("b")
        phi.add_incoming(vals.const_int(1), b1)
        phi.add_incoming(vals.const_int(2), b2)
        assert phi.incoming() == [(vals.const_int(1), b1), (vals.const_int(2), b2)]

    def test_landingpad_clauses(self):
        lp = LandingPad(clauses=("cleanup", "catch i8*"))
        assert lp.clauses == ("cleanup", "catch i8*")

    def test_call_infers_return_type_from_function(self):
        module = Module()
        callee = module.create_function("callee", ty.function_type(ty.DOUBLE, [ty.I32]))
        call = Call(callee, [vals.const_int(1)])
        assert call.type == ty.DOUBLE
        assert call.callee is callee
        assert len(call.args) == 1


class TestClassification:
    def test_terminators(self):
        assert Return().is_terminator
        assert Branch(BasicBlock("b")).is_terminator
        assert Unreachable().is_terminator
        a, b = _args()
        assert not BinaryOperator("add", a, b).is_terminator

    def test_commutativity(self):
        a, b = _args()
        assert BinaryOperator("add", a, b).is_commutative
        assert BinaryOperator("mul", a, b).is_commutative
        assert not BinaryOperator("sub", a, b).is_commutative
        assert not BinaryOperator("sdiv", a, b).is_commutative

    def test_side_effects(self):
        pointer = Alloca(ty.I32)
        assert Store(vals.const_int(1), pointer).has_side_effects
        assert not Load(pointer).has_side_effects
        a, b = _args()
        assert not BinaryOperator("add", a, b).has_side_effects

    def test_all_opcodes_unique(self):
        assert len(ALL_OPCODES) == len(set(ALL_OPCODES))


class TestClone:
    def test_clone_copies_structure_and_operands(self):
        a, b = _args()
        original = BinaryOperator("add", a, b)
        copy = original.clone()
        assert copy is not original
        assert copy.opcode == "add"
        assert copy.operands == [a, b]
        assert copy in a.users  # clone registers itself as a user

    def test_clone_detached_from_parent(self):
        block = BasicBlock("bb")
        a, b = _args()
        inst = BinaryOperator("add", a, b)
        block.append(inst)
        copy = inst.clone()
        assert copy.parent is None

    def test_clone_copies_attrs_independently(self):
        a, b = _args()
        original = ICmp("slt", a, b)
        copy = original.clone()
        copy.attrs["predicate"] = "sgt"
        assert original.predicate == "slt"

    def test_erase_from_parent(self):
        block = BasicBlock("bb")
        a, b = _args()
        inst = BinaryOperator("add", a, b)
        block.append(inst)
        inst.erase_from_parent()
        assert len(block) == 0
        assert inst not in a.users
