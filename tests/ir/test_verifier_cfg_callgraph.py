"""Tests for the verifier, CFG utilities and call graph."""

import pytest

from repro.ir import IRBuilder, Module, VerificationError, verify_function, verify_or_raise
from repro.ir import cfg
from repro.ir import types as ty
from repro.ir import values as vals
from repro.ir.callgraph import CallGraph
from repro.ir.instructions import Branch, Instruction, Store


def _diamond_function(module=None):
    """entry -> (left | right) -> join -> exit structure."""
    module = module or Module()
    function = module.create_function("diamond", ty.function_type(ty.I32, [ty.I32]),
                                      arg_names=["x"])
    entry = function.append_block("entry")
    left = function.append_block("left")
    right = function.append_block("right")
    join = function.append_block("join")
    builder = IRBuilder(entry)
    slot = builder.alloca(ty.I32, "slot")
    cond = builder.icmp("sgt", function.arguments[0], vals.const_int(0))
    builder.cond_br(cond, left, right)
    lb = IRBuilder(left)
    lb.store(vals.const_int(1), slot)
    lb.br(join)
    rb = IRBuilder(right)
    rb.store(vals.const_int(2), slot)
    rb.br(join)
    jb = IRBuilder(join)
    jb.ret(jb.load(slot))
    return module, function


class TestVerifier:
    def test_valid_function_passes(self):
        _, function = _diamond_function()
        assert verify_function(function) == []

    def test_missing_terminator_detected(self):
        module = Module()
        function = module.create_function("f", ty.function_type(ty.I32, []))
        block = function.append_block("entry")
        IRBuilder(block).add(vals.const_int(1), vals.const_int(2))
        errors = verify_function(function)
        assert any("terminator" in e for e in errors)

    def test_empty_block_detected(self):
        module = Module()
        function = module.create_function("f", ty.function_type(ty.VOID, []))
        function.append_block("entry")
        assert any("empty" in e for e in verify_function(function))

    def test_return_type_mismatch_detected(self):
        module = Module()
        function = module.create_function("f", ty.function_type(ty.I64, []))
        IRBuilder(function.append_block("entry")).ret(vals.const_int(1, 32))
        assert any("return type" in e for e in verify_function(function))

    def test_void_function_returning_value_detected(self):
        module = Module()
        function = module.create_function("f", ty.function_type(ty.VOID, []))
        IRBuilder(function.append_block("entry")).ret(vals.const_int(1))
        assert any("void" in e for e in verify_function(function))

    def test_binary_type_mismatch_detected(self):
        module = Module()
        function = module.create_function("f", ty.function_type(ty.VOID, []))
        block = function.append_block("entry")
        bad = Instruction("add", ty.I32, [vals.const_int(1, 32), vals.const_int(1, 64)])
        block.append(bad)
        IRBuilder(block).ret_void()
        assert any("binary operand" in e for e in verify_function(function))

    def test_store_pointee_mismatch_detected(self):
        module = Module()
        function = module.create_function("f", ty.function_type(ty.VOID, []))
        block = function.append_block("entry")
        builder = IRBuilder(block)
        slot = builder.alloca(ty.I64)
        block.append(Store(vals.const_int(1, 8), slot))
        builder.position_at_end(block)
        builder.ret_void()
        assert any("stored type" in e for e in verify_function(function))

    def test_cross_function_operand_detected(self):
        module = Module()
        f = module.create_function("f", ty.function_type(ty.I32, [ty.I32]))
        g = module.create_function("g", ty.function_type(ty.I32, [ty.I32]))
        IRBuilder(f.append_block("entry")).ret(f.arguments[0])
        IRBuilder(g.append_block("entry")).ret(f.arguments[0])  # wrong function's arg
        assert any("another function" in e for e in verify_function(g))

    def test_call_argument_mismatch_detected(self):
        module = Module()
        callee = module.create_function("callee", ty.function_type(ty.I32, [ty.I64]))
        caller = module.create_function("caller", ty.function_type(ty.I32, []))
        builder = IRBuilder(caller.append_block("entry"))
        call = builder.call(callee, [vals.const_int(1, 32)])
        builder.ret(call)
        assert any("argument type" in e for e in verify_function(caller))

    def test_branch_condition_must_be_i1(self):
        module = Module()
        function = module.create_function("f", ty.function_type(ty.VOID, []))
        entry = function.append_block("entry")
        other = function.append_block("other")
        entry.append(Branch(vals.const_int(1, 32), other, other))
        IRBuilder(other).ret_void()
        assert any("i1" in e for e in verify_function(function))

    def test_verify_or_raise(self):
        module = Module()
        function = module.create_function("f", ty.function_type(ty.VOID, []))
        function.append_block("entry")
        with pytest.raises(VerificationError):
            verify_or_raise(module)
        ok_module, _ = _diamond_function()
        verify_or_raise(ok_module)  # should not raise


class TestCFG:
    def test_reverse_post_order_starts_at_entry(self):
        _, function = _diamond_function()
        rpo = cfg.reverse_post_order(function)
        assert rpo[0] is function.entry_block
        assert len(rpo) == 4

    def test_rpo_visits_all_blocks_even_unreachable(self):
        module, function = _diamond_function()
        orphan = function.append_block("orphan")
        IRBuilder(orphan).ret(vals.const_int(9))
        rpo = cfg.reverse_post_order(function)
        assert orphan in rpo

    def test_rpo_respects_canonical_successor_order(self):
        _, function = _diamond_function()
        rpo = cfg.reverse_post_order(function)
        names = [b.name for b in rpo]
        assert names.index("left") < names.index("right")

    def test_post_order_is_reverse_of_rpo_for_reachable(self):
        _, function = _diamond_function()
        po = cfg.post_order(function)
        rpo = cfg.reverse_post_order(function)
        assert po == list(reversed(rpo))

    def test_dominators(self):
        _, function = _diamond_function()
        dominators = cfg.compute_dominators(function)
        blocks = {b.name: b for b in function.blocks}
        assert blocks["entry"] in dominators[blocks["join"]]
        assert blocks["left"] not in dominators[blocks["join"]]
        assert dominators[blocks["entry"]] == {blocks["entry"]}

    def test_edges(self):
        _, function = _diamond_function()
        edge_names = {(a.name, b.name) for a, b in cfg.edges(function)}
        assert ("entry", "left") in edge_names
        assert ("left", "join") in edge_names
        assert ("entry", "join") not in edge_names

    def test_is_reachable(self):
        module, function = _diamond_function()
        orphan = function.append_block("orphan")
        IRBuilder(orphan).ret(vals.const_int(9))
        assert cfg.is_reachable(function, function.entry_block)
        assert not cfg.is_reachable(function, orphan)


class TestCallGraph:
    def _module_with_calls(self):
        module = Module()
        leaf = module.create_function("leaf", ty.function_type(ty.I32, [ty.I32]))
        IRBuilder(leaf.append_block("entry")).ret(leaf.arguments[0])
        mid = module.create_function("mid", ty.function_type(ty.I32, [ty.I32]))
        builder = IRBuilder(mid.append_block("entry"))
        builder.ret(builder.call(leaf, [mid.arguments[0]]))
        top = module.create_function("top", ty.function_type(ty.I32, [ty.I32]),
                                     linkage="external")
        builder = IRBuilder(top.append_block("entry"))
        a = builder.call(mid, [top.arguments[0]])
        b = builder.call(leaf, [a])
        builder.ret(b)
        return module, leaf, mid, top

    def test_edges_and_call_sites(self):
        module, leaf, mid, top = self._module_with_calls()
        graph = CallGraph(module)
        assert leaf in graph.callees_of(mid)
        assert mid in graph.callers_of(leaf)
        assert len(graph.direct_call_sites(leaf)) == 2
        assert graph.is_leaf(leaf)
        assert not graph.is_leaf(top)

    def test_address_taken_detection(self):
        module, leaf, mid, top = self._module_with_calls()
        # store the address of leaf somewhere
        user = module.create_function("user", ty.function_type(ty.VOID, []))
        builder = IRBuilder(user.append_block("entry"))
        slot = builder.alloca(leaf.type)
        builder.store(leaf, slot)
        builder.ret_void()
        graph = CallGraph(module)
        assert graph.is_address_taken(leaf)
        assert leaf.address_taken
        assert not graph.is_address_taken(mid)

    def test_dead_function_detection(self):
        module = Module()
        dead = module.create_function("dead", ty.function_type(ty.VOID, []))
        IRBuilder(dead.append_block("entry")).ret_void()
        graph = CallGraph(module)
        assert graph.is_dead(dead)
        external = module.create_function("ext", ty.function_type(ty.VOID, []),
                                          linkage="external")
        IRBuilder(external.append_block("entry")).ret_void()
        graph.rebuild()
        assert not graph.is_dead(external)


class TestVerifierV1Regressions:
    """Regressions for gaps verifier v1 historically had: malformed
    declarations passed silently because the declaration early-return ran
    before any argument checks."""

    def test_declaration_argument_count_mismatch(self):
        module = Module()
        declaration = module.create_function(
            "ext", ty.function_type(ty.I32, [ty.I32, ty.I32]))
        declaration.arguments.pop()
        errors = verify_function(declaration)
        assert any("argument count" in e for e in errors)

    def test_declaration_broken_argument_parent(self):
        module = Module()
        declaration = module.create_function(
            "ext", ty.function_type(ty.I32, [ty.I32]))
        other = module.create_function(
            "other", ty.function_type(ty.I32, [ty.I32]))
        declaration.arguments[0].parent = other
        errors = verify_function(declaration)
        assert any("parent link broken" in e for e in errors)

    def test_well_formed_declaration_still_passes(self):
        module = Module()
        module.create_function("ext", ty.function_type(ty.I32, [ty.I32]))
        verify_or_raise(module)
