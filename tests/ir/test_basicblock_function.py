"""Tests for basic blocks, functions and modules."""

import pytest

from repro.ir import IRBuilder, Module
from repro.ir import types as ty
from repro.ir import values as vals
from repro.ir.basicblock import BasicBlock
from repro.ir.function import Function
from repro.ir.instructions import Branch, Return


class TestBasicBlock:
    def _block_with_ret(self):
        block = BasicBlock("bb")
        block.append(Return(vals.const_int(1)))
        return block

    def test_append_sets_parent(self):
        block = self._block_with_ret()
        assert block.instructions[0].parent is block

    def test_terminator_detection(self):
        block = BasicBlock("bb")
        assert block.terminator is None
        assert not block.is_terminated
        block.append(Return())
        assert block.terminator is block.instructions[-1]
        assert block.is_terminated

    def test_successors_and_predecessors(self):
        module = Module()
        function = module.create_function("f", ty.function_type(ty.VOID, []))
        entry = function.append_block("entry")
        left = function.append_block("left")
        right = function.append_block("right")
        builder = IRBuilder(entry)
        builder.cond_br(vals.const_bool(True), left, right)
        IRBuilder(left).ret_void()
        IRBuilder(right).ret_void()
        assert entry.successors() == [left, right]
        assert left.predecessors() == [entry]
        assert right.predecessors() == [entry]

    def test_insert_before(self):
        block = BasicBlock("bb")
        ret = Return()
        block.append(ret)
        branchless = Return(vals.const_int(2))
        block.insert_before(ret, branchless)
        assert block.instructions[0] is branchless

    def test_split_at_moves_tail(self):
        module = Module()
        function = module.create_function("f", ty.function_type(ty.I32, [ty.I32]))
        block = function.append_block("entry")
        builder = IRBuilder(block)
        add = builder.add(function.arguments[0], vals.const_int(1))
        builder.ret(add)
        tail = block.split_at(1)
        assert len(block.instructions) == 1
        assert tail.instructions[0].opcode == "ret"
        assert tail in function.blocks

    def test_landing_block_detection(self):
        block = BasicBlock("lp")
        builder = IRBuilder(block)
        builder.landingpad()
        assert block.is_landing_block
        normal = self._block_with_ret()
        assert not normal.is_landing_block

    def test_phi_helpers(self):
        block = BasicBlock("bb")
        builder = IRBuilder(block)
        phi = builder.phi(ty.I32)
        builder.ret(phi)
        assert block.phis() == [phi]
        assert block.first_non_phi_index() == 1


class TestFunction:
    def test_arguments_created_from_type(self):
        module = Module()
        function = module.create_function(
            "f", ty.function_type(ty.I32, [ty.I32, ty.DOUBLE]), arg_names=["a", "b"])
        assert [a.name for a in function.arguments] == ["a", "b"]
        assert [a.type for a in function.arguments] == [ty.I32, ty.DOUBLE]
        assert function.arguments[1].index == 1

    def test_bad_linkage_rejected(self):
        with pytest.raises(ValueError):
            Function("f", ty.function_type(ty.VOID, []), linkage="weak")

    def test_declaration_vs_definition(self):
        module = Module()
        function = module.create_function("f", ty.function_type(ty.VOID, []))
        assert function.is_declaration
        function.append_block("entry")
        assert not function.is_declaration

    def test_entry_block_requires_body(self):
        module = Module()
        function = module.create_function("f", ty.function_type(ty.VOID, []))
        with pytest.raises(ValueError):
            _ = function.entry_block

    def test_instruction_count(self):
        module = Module()
        function = module.create_function("f", ty.function_type(ty.I32, [ty.I32]))
        builder = IRBuilder(function.append_block("entry"))
        v = builder.add(function.arguments[0], vals.const_int(1))
        builder.ret(v)
        assert function.instruction_count() == 2
        assert len(list(function.instructions())) == 2

    def test_drop_body_clears_blocks_and_uses(self):
        module = Module()
        function = module.create_function("f", ty.function_type(ty.I32, [ty.I32]))
        builder = IRBuilder(function.append_block("entry"))
        v = builder.add(function.arguments[0], vals.const_int(1))
        builder.ret(v)
        function.drop_body()
        assert function.is_declaration
        assert not function.arguments[0].users

    def test_can_be_deleted_rules(self):
        module = Module()
        internal = module.create_function("f", ty.function_type(ty.VOID, []),
                                          linkage="internal")
        external = module.create_function("g", ty.function_type(ty.VOID, []),
                                          linkage="external")
        assert internal.can_be_deleted()
        assert not external.can_be_deleted()
        internal.address_taken = True
        assert not internal.can_be_deleted()

    def test_callers_lists_direct_call_sites(self):
        module = Module()
        callee = module.create_function("callee", ty.function_type(ty.I32, []))
        IRBuilder(callee.append_block("entry")).ret(vals.const_int(1))
        caller = module.create_function("caller", ty.function_type(ty.I32, []))
        builder = IRBuilder(caller.append_block("entry"))
        call = builder.call(callee, [])
        builder.ret(call)
        assert callee.callers() == [call]


class TestModule:
    def test_duplicate_function_name_rejected(self):
        module = Module()
        module.create_function("f", ty.function_type(ty.VOID, []))
        with pytest.raises(ValueError):
            module.create_function("f", ty.function_type(ty.VOID, []))

    def test_unique_name(self):
        module = Module()
        module.create_function("f", ty.function_type(ty.VOID, []))
        assert module.unique_name("f") == "f.1"
        assert module.unique_name("g") == "g"

    def test_remove_and_rename(self):
        module = Module()
        function = module.create_function("f", ty.function_type(ty.VOID, []))
        module.rename_function(function, "g")
        assert module.get_function("g") is function
        assert module.get_function("f") is None
        module.remove_function(function)
        assert module.get_function("g") is None

    def test_globals(self):
        module = Module()
        gv = module.add_global("counter", ty.I64, vals.ConstantInt(ty.I64, 7))
        assert module.get_global("counter") is gv
        with pytest.raises(ValueError):
            module.add_global("counter", ty.I64)

    def test_defined_vs_declarations(self):
        module = Module()
        defined = module.create_function("d", ty.function_type(ty.VOID, []))
        IRBuilder(defined.append_block("entry")).ret_void()
        module.create_function("e", ty.function_type(ty.VOID, []), linkage="external")
        assert [f.name for f in module.defined_functions()] == ["d"]
        assert [f.name for f in module.declarations()] == ["e"]

    def test_module_iteration_and_instruction_count(self):
        module = Module()
        f = module.create_function("f", ty.function_type(ty.I32, []))
        IRBuilder(f.append_block("entry")).ret(vals.const_int(0))
        assert [fn.name for fn in module] == ["f"]
        assert module.instruction_count() == 1
