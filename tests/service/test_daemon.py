"""End-to-end tests for the merge daemon.

Everything runs against a real daemon bound to an ephemeral localhost port
(or a unix socket), talked to through the real client - the full wire
path.  Covers: request/response happy paths, bit-identical decisions vs
the direct (daemon-less) pipeline under serial/thread/process executors,
warm-request accounting, wire-level rejections (malformed JSON, oversized
payloads, unknown methods/sessions), bounded-queue backpressure (429),
concurrent clients hammering one daemon, session TTL eviction, killed
alignment workers (pool recycles, ``stats`` reports it, subsequent
requests succeed) and client disconnects mid-request.
"""

import json
import os
import signal
import socket
import threading
import time

import pytest

from repro.evaluation.pipeline import compile_module
from repro.service import (DaemonConfig, MergeDaemon, ServiceClient,
                           ServiceError)
from repro.service.protocol import build_module, jsonable_decisions

WORKLOAD = {"kind": "workload", "suite": "mibench", "benchmark": "rijndael"}

SOURCE = """
int scale2(int a, int b) { int c; c = a + b; return c * 2; }
int scale3(int a, int b) { int c; c = a + b; return c * 3; }
int lonely(int x) { return x + 41; }
"""

EXTRA_FUNCTION = """
int scale5(int a, int b) { int c; c = a + b; return c * 5; }
"""


def make_daemon(**overrides):
    settings = dict(port=0, executor="serial", session_ttl=60.0,
                    tick_seconds=0.05)
    settings.update(overrides)
    return MergeDaemon(DaemonConfig(**settings)).start()


@pytest.fixture
def daemon():
    daemon = make_daemon()
    yield daemon
    daemon.shutdown()


@pytest.fixture
def client(daemon):
    with ServiceClient(daemon.address, timeout=30.0) as client:
        yield client


def direct_decisions(payload, **kwargs):
    result = compile_module(build_module(payload), "fmsa", **kwargs)
    return jsonable_decisions(result.merge_report.decision_keys())


# -- happy paths --------------------------------------------------------------

class TestBasics:
    def test_health_and_stats(self, client):
        assert client.health()["ok"] is True
        stats = client.stats()
        assert stats["requests_total"] >= 1
        assert stats["sessions_open"] == 0
        assert "align_cache_entries" in stats

    def test_compile_module_round_trip(self, client):
        result = client.compile_module(WORKLOAD)
        assert result["merge_count"] >= 1
        assert result["size_after"] < result["size_baseline"]
        assert result["decisions"]
        assert result["warm"] is False  # first request builds the pass

    def test_warm_requests_reuse_the_pass(self):
        # result cache off: repeats exercise the engine-level warm tier
        # (reused pass + resident alignment cache), not the response memo
        daemon = make_daemon(result_cache_size=0)
        try:
            with ServiceClient(daemon.address, timeout=30.0) as client:
                cold = client.compile_module(WORKLOAD)
                warm = client.compile_module(WORKLOAD)
                assert cold["warm"] is False and warm["warm"] is True
                assert warm["result_cache_hit"] is False
                assert cold["decisions"] == warm["decisions"]
                stats = client.stats()
                assert stats["warm_requests"] == 1
                assert stats["cold_requests"] == 1
                assert stats["result_cache_hits"] == 0
        finally:
            daemon.shutdown()

    def test_identical_requests_hit_the_result_cache(self, client):
        cold = client.compile_module(WORKLOAD)
        assert cold["result_cache_hit"] is False
        warm = client.compile_module(WORKLOAD)
        assert warm["warm"] is True
        assert warm["result_cache_hit"] is True
        assert warm["decisions"] == cold["decisions"]
        # different options miss: they are a different pure function
        other = client.compile_module(WORKLOAD, options={"threshold": 2})
        assert other["result_cache_hit"] is False
        stats = client.stats()
        assert stats["result_cache_hits"] == 1
        assert stats["result_cache_entries"] == 2

    def test_techniques_other_than_fmsa(self, client):
        result = client.compile_module(WORKLOAD,
                                       options={"technique": "identical"})
        assert result["technique"] == "identical"
        assert result["decisions"] == []

    def test_session_lifecycle(self, client):
        opened = client.open_session({"kind": "source", "text": SOURCE})
        sid = opened["session"]
        assert opened["merge_count"] == 1  # scale2 + scale3 merge

        update = client.session_update(
            sid, [{"op": "add", "name": "scale5", "source": EXTRA_FUNCTION}])
        assert update["merge_count"] >= 1
        assert update["edits"] == 1

        closed = client.close_session(sid)
        assert closed["closed"] is True
        with pytest.raises(ServiceError) as err:
            client.session_update(sid, [])
        assert err.value.code == "unknown-session"

    def test_unix_socket_transport(self, tmp_path):
        path = str(tmp_path / "merged.sock")
        daemon = make_daemon(unix_socket=path)
        try:
            assert daemon.address == path
            with ServiceClient(path, timeout=30.0) as client:
                assert client.health()["ok"] is True
                result = client.compile_module(WORKLOAD)
                assert result["decisions"] == direct_decisions(WORKLOAD)
        finally:
            daemon.shutdown()
        assert not os.path.exists(path)


# -- bit-identity vs the direct path ------------------------------------------

class TestDecisionParity:
    @pytest.mark.parametrize("executor", ["serial", "thread", "process"])
    def test_daemon_decisions_match_direct_compile(self, executor):
        daemon = make_daemon(executor=executor, jobs=2)
        try:
            with ServiceClient(daemon.address, timeout=60.0) as client:
                served = client.compile_module(WORKLOAD)
        finally:
            daemon.shutdown()
        for direct_executor in ("serial", "thread", "process"):
            assert served["decisions"] == direct_decisions(
                WORKLOAD, executor=direct_executor, jobs=2), direct_executor

    def test_session_decisions_match_direct_session_after_edits(self, client):
        sid = client.open_session({"kind": "source", "text": SOURCE})["session"]
        update = client.session_update(
            sid, [{"op": "add", "name": "scale5", "source": EXTRA_FUNCTION},
                  {"op": "remove", "name": "lonely"}])
        # reference point: the same module payload and edit script driven
        # through a direct (daemon-less) session
        from repro.evaluation.pipeline import open_compile_session
        from repro.service.protocol import build_edits
        module = build_module({"kind": "source", "text": SOURCE})
        edits = build_edits(
            [{"op": "add", "name": "scale5", "source": EXTRA_FUNCTION},
             {"op": "remove", "name": "lonely"}])
        with open_compile_session(module) as session:
            session.update(edits)
            reference = jsonable_decisions(session.report.decision_keys())
        assert update["decisions"] == reference


# -- wire-level rejections ----------------------------------------------------

def raw_post(address, path, body: bytes, headers=None):
    """POST raw bytes (bypassing the client's JSON encoding) and return
    ``(status, decoded-body)``."""
    host, _, port = address.rpartition(":")
    import http.client
    connection = http.client.HTTPConnection(host, int(port), timeout=30.0)
    try:
        default = {"Content-Type": "application/json",
                   "Content-Length": str(len(body))}
        default.update(headers or {})
        connection.putrequest("POST", path)
        for name, value in default.items():
            connection.putheader(name, value)
        connection.endheaders()
        connection.send(body)
        response = connection.getresponse()
        return response.status, json.loads(response.read() or b"{}")
    finally:
        connection.close()


class TestRejections:
    def test_malformed_json_is_400(self, daemon):
        status, payload = raw_post(daemon.address, "/compile_module",
                                   b"this is not json {")
        assert status == 400
        assert payload["error"]["code"] == "bad-request"

    def test_non_object_json_is_400(self, daemon):
        status, payload = raw_post(daemon.address, "/compile_module",
                                   b"[1, 2, 3]")
        assert status == 400
        assert payload["error"]["code"] == "bad-request"

    def test_oversized_payload_is_413_without_reading_the_body(self):
        daemon = make_daemon(max_payload_bytes=1024)
        try:
            body = b'{"module": "' + b"x" * 4096 + b'"}'
            status, payload = raw_post(daemon.address, "/compile_module", body)
            assert status == 413
            assert payload["error"]["code"] == "too-large"
        finally:
            daemon.shutdown()

    def test_unknown_method_is_404(self, daemon, client):
        status, payload = raw_post(daemon.address, "/frobnicate", b"{}")
        assert status == 404
        assert payload["error"]["code"] == "unknown-method"
        with pytest.raises(ServiceError) as err:
            client._request("GET", "/compile_module")
        assert err.value.code == "unknown-method"

    def test_unknown_session_is_404(self, client):
        with pytest.raises(ServiceError) as err:
            client.session_update("deadbeef", [])
        assert err.value.code == "unknown-session"
        with pytest.raises(ServiceError) as err:
            client.close_session("deadbeef")
        assert err.value.code == "unknown-session"

    def test_bad_options_are_400(self, client):
        with pytest.raises(ServiceError) as err:
            client.compile_module(WORKLOAD, options={"technique": "magic"})
        assert err.value.code == "bad-request"
        with pytest.raises(ServiceError) as err:
            client.compile_module(WORKLOAD, options={"threshold": "high"})
        assert err.value.code == "bad-request"
        with pytest.raises(ServiceError) as err:
            client.compile_module(WORKLOAD, options={"no_such_option": 1})
        assert err.value.code == "bad-request"

    def test_invalid_edit_script_is_400(self, client):
        sid = client.open_session({"kind": "source", "text": SOURCE})["session"]
        with pytest.raises(ServiceError) as err:
            client.session_update(
                sid, [{"op": "remove", "name": "does_not_exist"}])
        assert err.value.code == "bad-request"
        # the session survives a rejected script
        update = client.session_update(sid, [])
        assert update["merge_count"] == 1


# -- backpressure -------------------------------------------------------------

class TestBackpressure:
    def test_busy_rejection_when_the_queue_is_full(self):
        daemon = make_daemon(queue_limit=1)
        try:
            # occupy the single admission slot deterministically, as an
            # in-flight request would
            assert daemon._admission.acquire(blocking=False)
            try:
                with ServiceClient(daemon.address, timeout=30.0) as client:
                    with pytest.raises(ServiceError) as err:
                        client.compile_module(WORKLOAD)
                    assert err.value.is_busy
                    assert err.value.status == 429
                    # health and stats bypass admission
                    assert client.health()["ok"] is True
                    assert client.stats()["busy_rejections"] == 1
            finally:
                daemon._admission.release()
            with ServiceClient(daemon.address, timeout=30.0) as client:
                assert client.compile_module(WORKLOAD)["merge_count"] >= 1
        finally:
            daemon.shutdown()

    def test_session_limit_is_busy(self):
        daemon = make_daemon(max_sessions=1)
        try:
            with ServiceClient(daemon.address, timeout=30.0) as client:
                sid = client.open_session(
                    {"kind": "source", "text": SOURCE})["session"]
                with pytest.raises(ServiceError) as err:
                    client.open_session({"kind": "source", "text": SOURCE})
                assert err.value.is_busy
                client.close_session(sid)
                assert client.open_session(
                    {"kind": "source", "text": SOURCE})["session"]
        finally:
            daemon.shutdown()


# -- concurrency --------------------------------------------------------------

class TestConcurrentClients:
    @pytest.mark.parametrize("executor", ["thread", "process"])
    def test_hammering_clients_get_bit_identical_decisions(self, executor):
        daemon = make_daemon(executor=executor, jobs=2, queue_limit=16)
        payloads = [
            WORKLOAD,
            {"kind": "workload", "suite": "mibench", "benchmark": "sha"},
            {"kind": "source", "text": SOURCE},
        ]
        expected = [direct_decisions(p) for p in payloads]
        results = {}
        errors = []

        def hammer(worker):
            try:
                with ServiceClient(daemon.address, timeout=120.0) as client:
                    for round_ in range(3):
                        payload = payloads[(worker + round_) % len(payloads)]
                        while True:
                            try:
                                response = client.compile_module(payload)
                                break
                            except ServiceError as error:
                                if not error.is_busy:
                                    raise
                                time.sleep(0.02)  # backpressure: retry
                        results.setdefault(
                            (worker + round_) % len(payloads),
                            []).append(response["decisions"])
            except Exception as error:  # pragma: no cover - failure detail
                errors.append((worker, error))

        try:
            threads = [threading.Thread(target=hammer, args=(i,))
                       for i in range(6)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=120)
        finally:
            daemon.shutdown()
        assert not errors, errors
        for index, decision_lists in results.items():
            for decisions in decision_lists:
                assert decisions == expected[index], f"payload {index}"

    def test_concurrent_sessions_are_independent(self, daemon):
        decisions = {}
        errors = []

        def drive(worker):
            try:
                with ServiceClient(daemon.address, timeout=60.0) as client:
                    sid = client.open_session(
                        {"kind": "source", "text": SOURCE})["session"]
                    update = client.session_update(
                        sid, [{"op": "add", "name": "scale5",
                               "source": EXTRA_FUNCTION}])
                    decisions[worker] = update["decisions"]
                    client.close_session(sid)
            except Exception as error:  # pragma: no cover
                errors.append((worker, error))

        threads = [threading.Thread(target=drive, args=(i,)) for i in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert not errors, errors
        assert len(set(map(json.dumps, decisions.values()))) == 1


# -- session TTL eviction -----------------------------------------------------

class TestEviction:
    def test_idle_sessions_are_evicted(self):
        daemon = make_daemon(session_ttl=0.2, tick_seconds=0.05)
        try:
            with ServiceClient(daemon.address, timeout=30.0) as client:
                sid = client.open_session(
                    {"kind": "source", "text": SOURCE})["session"]
                deadline = time.monotonic() + 10
                while time.monotonic() < deadline:
                    if client.stats()["sessions_evicted"] >= 1:
                        break
                    time.sleep(0.05)
                stats = client.stats()
                assert stats["sessions_evicted"] == 1
                assert stats["sessions_open"] == 0
                with pytest.raises(ServiceError) as err:
                    client.session_update(sid, [])
                assert err.value.code == "unknown-session"
        finally:
            daemon.shutdown()

    def test_active_sessions_survive(self):
        daemon = make_daemon(session_ttl=0.6, tick_seconds=0.05)
        try:
            with ServiceClient(daemon.address, timeout=30.0) as client:
                sid = client.open_session(
                    {"kind": "source", "text": SOURCE})["session"]
                for _ in range(4):  # keep touching it past one TTL window
                    time.sleep(0.2)
                    client.session_update(sid, [])
                assert client.stats()["sessions_evicted"] == 0
        finally:
            daemon.shutdown()


# -- failure recovery ---------------------------------------------------------

class TestWorkerCrashRecovery:
    def test_killed_worker_recycles_the_pool_and_requests_succeed(self):
        daemon = make_daemon(executor="process", jobs=2)
        try:
            with ServiceClient(daemon.address, timeout=120.0) as client:
                first = client.compile_module(WORKLOAD)
                stats = client.stats()
                pids = stats.get("worker_pids", [])
                assert pids, "process executor should expose worker pids"
                for pid in pids:
                    os.kill(pid, signal.SIGKILL)
                # a repeat of WORKLOAD would be answered from the resident
                # cache without touching the pool; an unseen module forces
                # fresh alignment work onto the (dead) pool - the daemon
                # recycles it and retries, so the request still succeeds
                second = client.compile_module(
                    {"kind": "source", "text": SOURCE})
                assert second["merge_count"] >= 1
                stats = client.stats()
                assert stats["pool_recycles"] >= 1
                new_pids = stats.get("worker_pids", [])
                assert new_pids and not (set(new_pids) & set(pids))
                # and the daemon keeps serving, bit-identically
                assert (client.compile_module(WORKLOAD)["decisions"]
                        == first["decisions"])
        finally:
            daemon.shutdown()

    def test_killed_worker_mid_session_recovers(self):
        daemon = make_daemon(executor="process", jobs=1)
        try:
            with ServiceClient(daemon.address, timeout=120.0) as client:
                sid = client.open_session(
                    {"kind": "source", "text": SOURCE})["session"]
                pids = client.stats().get("worker_pids", [])
                for pid in pids:
                    os.kill(pid, signal.SIGKILL)
                update = client.session_update(
                    sid, [{"op": "add", "name": "scale5",
                           "source": EXTRA_FUNCTION}])
                assert update["merge_count"] >= 1
        finally:
            daemon.shutdown()


class TestClientDisconnect:
    def test_disconnect_mid_request_is_survived_and_counted(self, daemon):
        host, _, port = daemon.address.rpartition(":")
        # declare a large body, send half of it, vanish
        raw = socket.create_connection((host, int(port)), timeout=10)
        raw.sendall(b"POST /compile_module HTTP/1.1\r\n"
                    b"Host: x\r\nContent-Length: 5000\r\n\r\n")
        raw.sendall(b'{"module": ')
        raw.close()
        with ServiceClient(daemon.address, timeout=30.0) as client:
            deadline = time.monotonic() + 10
            while time.monotonic() < deadline:
                if client.stats()["client_disconnects"] >= 1:
                    break
                time.sleep(0.05)
            assert client.stats()["client_disconnects"] >= 1
            # the daemon still serves normal requests
            assert client.compile_module(WORKLOAD)["merge_count"] >= 1


# -- pool recycling by request count ------------------------------------------

class TestScheduledRecycle:
    def test_recycle_after_n_requests(self):
        daemon = make_daemon(executor="process", jobs=1, recycle_after=2)
        # distinct seeds: every request must actually reach the engine
        # (identical ones would be answered from the result cache)
        variant = [dict(WORKLOAD, seed=n) for n in (1, 2, 3)]
        try:
            with ServiceClient(daemon.address, timeout=120.0) as client:
                client.compile_module(variant[0])
                pids_before = client.stats().get("worker_pids", [])
                client.compile_module(variant[1])  # hits the threshold
                third = client.compile_module(variant[2])
                assert third["merge_count"] >= 0
                stats = client.stats()
                assert stats["pool_builds"] >= 2
                pids_after = stats.get("worker_pids", [])
                assert pids_before and pids_after
                assert not (set(pids_before) & set(pids_after))
        finally:
            daemon.shutdown()


class TestSanitizerMode:
    def test_sanitize_stats_counters(self):
        daemon = make_daemon(sanitize=True, result_cache_size=0)
        try:
            with ServiceClient(daemon.address, timeout=60.0) as client:
                result = client.compile_module(WORKLOAD)
                # 0 means the sanitizer ran and found nothing; None (the
                # plain-daemon value) means it never ran at all
                assert result["sanitize_violations"] == 0

                opened = client.open_session(
                    {"kind": "source", "text": SOURCE})
                sid = opened["session"]
                client.session_update(sid, [])
                client.close_session(sid)

                stats = client.stats()
                assert stats["sanitize_enabled"] is True
                assert stats["sanitize_runs"] > 0
                assert stats["sanitize_violations"] == 0
                assert stats["sanitize_wall_seconds"] >= 0.0
        finally:
            daemon.shutdown()

    def test_sanitize_decisions_match_plain_daemon(self):
        plain = make_daemon()
        checked = make_daemon(sanitize=True)
        try:
            with ServiceClient(plain.address, timeout=60.0) as a, \
                    ServiceClient(checked.address, timeout=60.0) as b:
                assert (a.compile_module(WORKLOAD)["decisions"]
                        == b.compile_module(WORKLOAD)["decisions"])
        finally:
            plain.shutdown()
            checked.shutdown()

    def test_sanitize_off_by_default(self, client):
        stats = client.stats()
        assert stats["sanitize_enabled"] is False
        assert "sanitize_runs" not in stats
