"""Daemon resilience: slow/malicious clients are bounded by the per-request
timeout, mid-response disconnects are absorbed and counted, repeated
internal failures trip the circuit breaker (503 + Retry-After, then a
half-open probe heals it), and consecutive worker-pool failures step the
executor degradation ladder (process -> thread -> serial) while the daemon
keeps serving bit-identical answers."""

import socket
import time

import pytest

from repro.resilience import FaultPlan, install_fault_plan
from repro.service import ServiceClient, ServiceError
from tests.service.test_daemon import WORKLOAD, make_daemon


@pytest.fixture(autouse=True)
def clean_fault_plan():
    install_fault_plan(None)
    yield
    install_fault_plan(None)


def tcp_endpoint(daemon):
    host, _, port = daemon.address.rpartition(":")
    return host, int(port)


def wait_for(predicate, timeout=10.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.05)
    return predicate()


class TestSlowClients:
    def test_header_then_stall_hits_the_request_timeout(self):
        daemon = make_daemon(request_timeout=0.5)
        try:
            # a real stalling client: full headers promising a body that
            # never arrives; the handler thread must not be parked forever
            raw = socket.create_connection(tcp_endpoint(daemon), timeout=10)
            raw.sendall(b"POST /compile_module HTTP/1.1\r\n"
                        b"Host: x\r\nContent-Length: 5000\r\n\r\n")
            with ServiceClient(daemon.address, timeout=30.0) as client:
                assert wait_for(
                    lambda: client.stats()["request_timeouts"] >= 1)
                # the stalled socket cost one handler thread for 0.5s,
                # nothing more: the daemon still serves and reports healthy
                assert client.compile_module(WORKLOAD)["merge_count"] >= 1
                assert client.health()["ok"] is True
            raw.close()
        finally:
            daemon.shutdown()

    def test_injected_slow_client_is_counted_and_retried_through(self):
        daemon = make_daemon()
        try:
            install_fault_plan(
                FaultPlan.parse("seed=1,service.slow_client:nth=1:count=1"))
            with ServiceClient(daemon.address, timeout=30.0) as client:
                # first delivery dies as a simulated body-read stall; the
                # client's single transport retry lands on a clean handler
                assert client.compile_module(WORKLOAD)["merge_count"] >= 1
                assert client.stats()["request_timeouts"] >= 1
        finally:
            daemon.shutdown()

    def test_mid_response_disconnect_is_absorbed(self):
        daemon = make_daemon()
        try:
            install_fault_plan(
                FaultPlan.parse("seed=1,service.socket_drop:nth=1:count=1"))
            with ServiceClient(daemon.address, timeout=30.0) as client:
                # the daemon computes the answer, then the wire breaks while
                # sending it; the client transparently retries once
                assert client.compile_module(WORKLOAD)["merge_count"] >= 1
                assert client.stats()["client_disconnects"] >= 1
                # and the daemon is entirely unbothered
                assert client.health()["ok"] is True
        finally:
            daemon.shutdown()


class TestCircuitBreaker:
    def test_breaker_opens_sheds_and_heals(self):
        daemon = make_daemon(breaker_threshold=2, breaker_reset_seconds=0.3)
        try:
            install_fault_plan(FaultPlan.parse("seed=1,scheduler.plan_fail"))
            with ServiceClient(daemon.address, timeout=30.0) as client:
                # distinct seeds: each request must reach the engine (and
                # fail there), not the result cache
                for n in (1, 2):
                    with pytest.raises(ServiceError) as excinfo:
                        client.compile_module(dict(WORKLOAD, seed=n))
                    assert excinfo.value.code == "internal"
                # threshold reached: the breaker now sheds load up front
                with pytest.raises(ServiceError) as excinfo:
                    client.compile_module(dict(WORKLOAD, seed=3))
                assert excinfo.value.code == "unavailable"
                assert excinfo.value.status == 503
                health = client.health()  # health bypasses the breaker
                assert health["breaker"] == "open"
                assert health["degraded"] is True
                assert client.stats()["breaker_rejections"] >= 1
                # the fault clears; after the reset window the half-open
                # probe succeeds and the breaker closes again
                install_fault_plan(None)
                time.sleep(0.35)
                assert client.compile_module(
                    dict(WORKLOAD, seed=4))["merge_count"] >= 1
                health = client.health()
                assert health["breaker"] == "closed"
                assert health["degraded"] is False
        finally:
            daemon.shutdown()


class TestExecutorLadder:
    def test_worker_failures_step_the_ladder(self, assert_no_leaked_workers):
        daemon = make_daemon(executor="process", jobs=1,
                             degrade_after_failures=1)
        try:
            install_fault_plan(
                FaultPlan.parse("seed=1,offload.worker_crash:nth=1:count=1"))
            with ServiceClient(daemon.address, timeout=120.0) as client:
                # the first attempt loses its worker; the daemon's internal
                # retry leases a fresh executor - now one rung down
                result = client.compile_module(WORKLOAD)
                assert result["merge_count"] >= 1
                stats = client.stats()
                assert stats["executor_kind"] == "thread"
                assert any(e["component"] == "service-executor"
                           and e["from"] == "process" and e["to"] == "thread"
                           for e in stats["degradations"])
                assert client.health()["degraded"] is True
        finally:
            daemon.shutdown()
