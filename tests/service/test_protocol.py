"""Tests for the merge daemon's JSON wire protocol.

Covers the regenerative module payloads (source + workload kinds, both
deterministic so the two sides of the wire can build bit-identical
modules), the edit-script decoding, every bad-request rejection the
protocol can express, payload-size gating, and the JSON form of decision
keys (round-trips through JSON compare equal to the server-side encoding).
"""

import json

import pytest

from repro.core.engine import ModuleEdit
from repro.evaluation.pipeline import compile_module
from repro.ir.printer import function_to_str
from repro.service import protocol
from repro.service.protocol import (ERROR_STATUS, ProtocolError, build_edits,
                                    build_module, check_payload_size,
                                    jsonable_decisions, parse_request)

SOURCE = """
int add2(int a, int b) { int c; c = a + b; return c * 2; }
int add3(int a, int b) { int c; c = a + b; return c * 3; }
"""


# -- request parsing ----------------------------------------------------------

class TestParseRequest:
    def test_parses_a_json_object(self):
        assert parse_request(b'{"a": 1}') == {"a": 1}

    @pytest.mark.parametrize("body", [
        b"", b"{", b"not json at all", b'"just a string"', b"[1, 2]",
        b"\xff\xfe\x00garbage",
    ])
    def test_malformed_bodies_are_bad_requests(self, body):
        with pytest.raises(ProtocolError) as err:
            parse_request(body)
        assert err.value.code == "bad-request"
        assert err.value.status == 400

    def test_error_payload_shape(self):
        error = ProtocolError("busy", "try later")
        assert error.to_payload() == {
            "error": {"code": "busy", "message": "try later"}}
        assert error.status == 429

    def test_every_code_has_a_status(self):
        for code, status in ERROR_STATUS.items():
            assert ProtocolError(code, "x").status == status

    def test_unknown_code_is_a_programming_error(self):
        with pytest.raises(ValueError):
            ProtocolError("no-such-code", "x")


# -- module payloads ----------------------------------------------------------

class TestBuildModule:
    def test_source_payload_compiles(self):
        module = build_module({"kind": "source", "text": SOURCE,
                               "name": "prog"})
        assert module.name == "prog"
        assert module.get_function("add2") is not None

    def test_source_payload_is_deterministic(self):
        payload = {"kind": "source", "text": SOURCE}
        one, two = build_module(payload), build_module(payload)
        assert ([function_to_str(f) for f in one.functions]
                == [function_to_str(f) for f in two.functions])

    def test_workload_payload_is_deterministic(self):
        payload = {"kind": "workload", "suite": "mibench",
                   "benchmark": "rijndael", "seed": 3}
        one, two = build_module(payload), build_module(payload)
        assert ([function_to_str(f) for f in one.functions]
                == [function_to_str(f) for f in two.functions])

    def test_spec_suite_works(self):
        module = build_module({"kind": "workload", "suite": "spec2006",
                               "benchmark": "429.mcf", "scale": 0.01})
        assert len(module.functions) > 0

    @pytest.mark.parametrize("payload", [
        None, [], "x",
        {},
        {"kind": "tarball"},
        {"kind": "source"},
        {"kind": "source", "text": 7},
        {"kind": "source", "text": "int f(", },          # parse error
        {"kind": "source", "text": SOURCE, "name": 1},
        {"kind": "workload"},
        {"kind": "workload", "suite": "nosuite", "benchmark": "sha"},
        {"kind": "workload", "suite": "mibench"},
        {"kind": "workload", "suite": "mibench", "benchmark": "no-such"},
        {"kind": "workload", "suite": "mibench", "benchmark": "sha",
         "scale": "big"},
        {"kind": "workload", "suite": "mibench", "benchmark": "sha",
         "cap": True},
    ])
    def test_bad_module_payloads(self, payload):
        with pytest.raises(ProtocolError) as err:
            build_module(payload)
        assert err.value.code == "bad-request"


# -- edit payloads ------------------------------------------------------------

class TestBuildEdits:
    def test_remove(self):
        (edit,) = build_edits([{"op": "remove", "name": "f"}])
        assert isinstance(edit, ModuleEdit)
        assert edit.kind == "remove" and edit.name == "f"

    def test_add_and_replace_extract_the_named_function(self):
        edits = build_edits([
            {"op": "add", "name": "add2", "source": SOURCE},
            {"op": "replace", "name": "add3", "source": SOURCE},
        ])
        assert [e.kind for e in edits] == ["add", "replace"]
        assert edits[0].function.name == "add2"
        assert edits[1].function.name == "add3"

    @pytest.mark.parametrize("payload", [
        {"not": "a list"},
        [42],
        [{"op": "add", "source": SOURCE}],                   # no name
        [{"op": "add", "name": "", "source": SOURCE}],
        [{"op": "frobnicate", "name": "f"}],
        [{"op": "add", "name": "f"}],                        # no source
        [{"op": "add", "name": "f", "source": 3}],
        [{"op": "add", "name": "f", "source": "int f("}],    # parse error
        [{"op": "add", "name": "missing", "source": SOURCE}],
    ])
    def test_bad_edit_payloads(self, payload):
        with pytest.raises(ProtocolError) as err:
            build_edits(payload)
        assert err.value.code == "bad-request"


# -- payload size gate --------------------------------------------------------

class TestPayloadSize:
    def test_within_limit_passes(self):
        check_payload_size(10, 10)

    def test_oversized_is_413(self):
        with pytest.raises(ProtocolError) as err:
            check_payload_size(11, 10)
        assert err.value.code == "too-large"
        assert err.value.status == 413

    def test_missing_length_is_bad_request(self):
        with pytest.raises(ProtocolError) as err:
            check_payload_size(None, 10)
        assert err.value.code == "bad-request"


# -- decision keys over the wire ----------------------------------------------

class TestJsonableDecisions:
    def test_round_trip_compares_equal(self):
        module = build_module({"kind": "workload", "suite": "mibench",
                               "benchmark": "rijndael"})
        result = compile_module(module, "fmsa")
        keys = result.merge_report.decision_keys()
        assert keys, "rijndael should commit at least one merge"
        encoded = jsonable_decisions(keys)
        # what a client receives after a JSON round trip is exactly what
        # the server encoded - the bit-identity comparison both the tests
        # and ci_service.py rely on
        assert json.loads(json.dumps(encoded)) == encoded
        assert encoded[0][0] == keys[0][0]

    def test_dump_response_is_utf8_json(self):
        body = protocol.dump_response({"ok": True})
        assert json.loads(body.decode("utf-8")) == {"ok": True}
