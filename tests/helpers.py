"""Shared helpers for the test suite: small IR factories and semantic
comparison utilities built on the interpreter."""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.ir import IRBuilder, Module, verify_or_raise
from repro.ir import types as ty
from repro.ir import values as vals
from repro.ir.function import Function
from repro.interp import Interpreter, standard_externals


def make_binary_chain_function(module: Module, name: str, opcodes: Sequence[str],
                               constant: int = 3, linkage: str = "internal") -> Function:
    """int f(int a, int b): a chain of binary ops ending in a compare-guarded
    return (two exit blocks)."""
    function = module.create_function(
        name, ty.function_type(ty.I32, [ty.I32, ty.I32]),
        linkage=linkage, arg_names=["a", "b"])
    entry = function.append_block("entry")
    builder = IRBuilder(entry)
    value = function.arguments[0]
    for opcode in opcodes:
        value = builder.binary(opcode, value, function.arguments[1])
    value = builder.mul(value, vals.const_int(constant))
    positive = function.append_block("positive")
    negative = function.append_block("negative")
    condition = builder.icmp("sgt", value, vals.const_int(0))
    builder.cond_br(condition, positive, negative)
    IRBuilder(positive).ret(value)
    negative_builder = IRBuilder(negative)
    negated = negative_builder.sub(vals.const_int(0), value)
    negative_builder.ret(negated)
    return function


def make_accumulator_function(module: Module, name: str, iterations_param: bool = True,
                              step_opcode: str = "add") -> Function:
    """int f(int n): a counted loop accumulating into a memory slot."""
    function = module.create_function(
        name, ty.function_type(ty.I32, [ty.I32]), arg_names=["n"])
    entry = function.append_block("entry")
    builder = IRBuilder(entry)
    total_slot = builder.alloca(ty.I32, "total")
    index_slot = builder.alloca(ty.I32, "i")
    builder.store(vals.const_int(0), total_slot)
    builder.store(vals.const_int(0), index_slot)
    cond = function.append_block("cond")
    body = function.append_block("body")
    exit_block = function.append_block("exit")
    builder.br(cond)

    cond_builder = IRBuilder(cond)
    index = cond_builder.load(index_slot)
    in_range = cond_builder.icmp("slt", index, function.arguments[0])
    cond_builder.cond_br(in_range, body, exit_block)

    body_builder = IRBuilder(body)
    index_value = body_builder.load(index_slot)
    total_value = body_builder.load(total_slot)
    stepped = body_builder.binary(step_opcode, total_value, index_value)
    body_builder.store(stepped, total_slot)
    next_index = body_builder.add(index_value, vals.const_int(1))
    body_builder.store(next_index, index_slot)
    body_builder.br(cond)

    exit_builder = IRBuilder(exit_block)
    exit_builder.ret(exit_builder.load(total_slot))
    return function


def make_caller(module: Module, name: str, callees: Sequence[Function],
                linkage: str = "external") -> Function:
    """int caller(int x): calls each callee once (with x and constants) and
    sums the integer results."""
    function = module.create_function(
        name, ty.function_type(ty.I32, [ty.I32]), linkage=linkage, arg_names=["x"])
    entry = function.append_block("entry")
    builder = IRBuilder(entry)
    total: vals.Value = function.arguments[0]
    for callee in callees:
        args: List[vals.Value] = []
        for want in callee.function_type.param_types:
            if want == ty.I32:
                args.append(total if total.type == ty.I32 else vals.const_int(2))
            elif want.is_integer:
                args.append(vals.ConstantInt(want, 3))
            elif want.is_float:
                args.append(vals.ConstantFloat(want, 1.5))
            elif want.is_pointer:
                args.append(vals.ConstantNull(want))
            else:
                args.append(vals.undef(want))
        call = builder.call(callee, args)
        if call.type == ty.I32:
            total = builder.add(total, call)
    builder.ret(total)
    return function


def run_function(module: Module, name: str, args: Sequence[object],
                 externals: Optional[Dict] = None) -> object:
    interpreter = Interpreter(module, externals or standard_externals())
    return interpreter.run(name, args)


def results_match(reference, candidate, bits: int = 32) -> bool:
    """Compare interpreter results, treating integers modulo 2**bits."""
    if isinstance(reference, float) or isinstance(candidate, float):
        if reference is None or candidate is None:
            return reference == candidate
        return abs(float(reference) - float(candidate)) < 1e-9
    if reference is None or candidate is None:
        return reference == candidate
    mask = (1 << bits) - 1
    return (int(reference) & mask) == (int(candidate) & mask)


def assert_semantically_equivalent(module_before: Module, module_after: Module,
                                   entry: str, inputs: Sequence[Sequence[object]],
                                   externals: Optional[Dict] = None) -> None:
    """Run ``entry`` on both modules for every input vector and require
    identical results."""
    for args in inputs:
        reference = run_function(module_before, entry, args, externals)
        candidate = run_function(module_after, entry, args, externals)
        assert results_match(reference, candidate), (
            f"{entry}{tuple(args)}: expected {reference!r}, got {candidate!r}")
