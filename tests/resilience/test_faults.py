"""Unit tests for the fault-injection core: the trigger grammar, the
deterministic per-site streams, pickling, and the process-wide install
machinery (env knob included)."""

import pickle

import pytest

from repro.resilience import (FAULT_SITES, FaultPlan, InjectedFault,
                              ResilienceError, SiteTrigger, active_fault_plan,
                              active_faults, fault_point, fault_triggered,
                              install_fault_plan)
from repro.resilience import faults as faults_module


class TestFaultPlan:
    def test_unknown_site_is_rejected_at_construction(self):
        with pytest.raises(ValueError, match="unknown fault site"):
            FaultPlan(sites={"offload.worker_crsh": SiteTrigger()})

    def test_registry_covers_every_instrumented_layer(self):
        prefixes = {site.split(".", 1)[0] for site in FAULT_SITES}
        assert prefixes == {"offload", "scheduler", "cache", "align",
                            "session", "service"}

    def test_nth_trigger_fires_exactly_once_on_the_nth_hit(self):
        plan = FaultPlan(sites={"scheduler.plan_fail": SiteTrigger(nth=3)})
        fires = [plan.should_fire("scheduler.plan_fail") for _ in range(6)]
        assert fires == [False, False, True, False, False, False]
        assert plan.hits["scheduler.plan_fail"] == 6
        assert plan.fired("scheduler.plan_fail") == 1

    def test_count_budget_caps_an_always_trigger(self):
        plan = FaultPlan(sites={
            "offload.worker_crash": SiteTrigger(probability=1.0, count=2)})
        fires = [plan.should_fire("offload.worker_crash") for _ in range(5)]
        assert fires == [True, True, False, False, False]
        assert plan.fired() == 2

    def test_unlisted_site_never_fires_but_listed_streams_are_seeded(self):
        plan = FaultPlan(seed=3, sites={
            "cache.snapshot_io": SiteTrigger(probability=0.5)})
        assert not any(plan.should_fire("align.kernel_crash")
                       for _ in range(50))
        # same seed, same stream: a rebuilt plan fires identically
        pattern = [plan.should_fire("cache.snapshot_io") for _ in range(50)]
        replay = FaultPlan(seed=3, sites={
            "cache.snapshot_io": SiteTrigger(probability=0.5)})
        assert [replay.should_fire("cache.snapshot_io")
                for _ in range(50)] == pattern
        assert any(pattern) and not all(pattern)

    def test_per_site_streams_are_independent(self):
        # consuming one site's stream must not perturb another's
        solo = FaultPlan(seed=9, sites={
            "cache.snapshot_io": SiteTrigger(probability=0.5)})
        pattern = [solo.should_fire("cache.snapshot_io") for _ in range(30)]
        mixed = FaultPlan(seed=9, sites={
            "cache.snapshot_io": SiteTrigger(probability=0.5),
            "align.kernel_crash": SiteTrigger(probability=0.5)})
        interleaved = []
        for _ in range(30):
            mixed.should_fire("align.kernel_crash")
            interleaved.append(mixed.should_fire("cache.snapshot_io"))
        assert interleaved == pattern

    def test_different_seeds_give_different_streams(self):
        def pattern(seed):
            plan = FaultPlan(seed=seed, sites={
                "cache.snapshot_io": SiteTrigger(probability=0.5)})
            return [plan.should_fire("cache.snapshot_io") for _ in range(64)]
        assert pattern(1) != pattern(2)

    def test_pickle_round_trip_preserves_schedule_state(self):
        plan = FaultPlan(seed=7, sites={
            "cache.snapshot_io": SiteTrigger(probability=0.5),
            "offload.worker_crash": SiteTrigger(nth=4)})
        head = [plan.should_fire("cache.snapshot_io") for _ in range(10)]
        clone = pickle.loads(pickle.dumps(plan))
        assert clone.seed == plan.seed and clone.sites == plan.sites
        assert clone.hits == plan.hits and clone.fires == plan.fires
        # the RNG state crossed the boundary: both continue the same stream
        tail = [plan.should_fire("cache.snapshot_io") for _ in range(10)]
        assert [clone.should_fire("cache.snapshot_io")
                for _ in range(10)] == tail
        assert head is not tail  # silence the obvious


class TestParseGrammar:
    def test_full_grammar_round_trip(self):
        plan = FaultPlan.parse(
            "seed=42,offload.worker_crash:p=0.2:count=1,cache.snapshot_io:nth=2")
        assert plan.seed == 42
        assert plan.sites["offload.worker_crash"] \
            == SiteTrigger(probability=0.2, nth=None, count=1)
        assert plan.sites["cache.snapshot_io"] \
            == SiteTrigger(probability=0.0, nth=2, count=None)

    def test_bare_site_fires_on_every_hit(self):
        plan = FaultPlan.parse("scheduler.plan_fail")
        assert plan.sites["scheduler.plan_fail"].probability == 1.0
        assert all(plan.should_fire("scheduler.plan_fail") for _ in range(5))

    @pytest.mark.parametrize("spec", [
        "seed=x",                       # unparseable seed
        "offload.worker_crash:boom=1",  # unknown trigger key
        "offload.worker_crash:nth=x",   # unparseable value
        "no.such.site",                 # unknown site
    ])
    def test_bad_specs_are_rejected(self, spec):
        with pytest.raises(ValueError):
            FaultPlan.parse(spec)


class TestActivePlan:
    def test_fault_point_is_inert_without_a_plan(self):
        assert active_fault_plan() is None
        fault_point("scheduler.plan_fail")  # no raise
        assert fault_triggered("cache.snapshot_io") is False

    def test_fault_point_raises_typed_injected_fault(self):
        with active_faults(FaultPlan.parse("scheduler.plan_fail")):
            with pytest.raises(InjectedFault) as excinfo:
                fault_point("scheduler.plan_fail")
        assert excinfo.value.site == "scheduler.plan_fail"
        assert isinstance(excinfo.value, ResilienceError)

    def test_active_faults_restores_the_previous_plan(self):
        outer = FaultPlan.parse("cache.snapshot_io:p=0.5")
        install_fault_plan(outer)
        with active_faults(FaultPlan.parse("scheduler.plan_fail")) as inner:
            assert active_fault_plan() is inner
        assert active_fault_plan() is outer

    def test_env_plan_installs_once(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "seed=5,cache.snapshot_io:nth=1")
        monkeypatch.setattr(faults_module, "_ENV_CHECKED", False)
        plan = faults_module.maybe_install_env_plan()
        assert plan is not None and plan.seed == 5
        assert active_fault_plan() is plan
        # second call is a no-op even with a different spec exported
        monkeypatch.setenv("REPRO_FAULTS", "seed=9,scheduler.plan_fail")
        assert faults_module.maybe_install_env_plan() is plan

    def test_env_check_is_one_shot_when_unset(self, monkeypatch):
        monkeypatch.delenv("REPRO_FAULTS", raising=False)
        monkeypatch.setattr(faults_module, "_ENV_CHECKED", False)
        assert faults_module.maybe_install_env_plan() is None
        # the flag flipped: later exports are deliberately not re-read
        monkeypatch.setenv("REPRO_FAULTS", "scheduler.plan_fail")
        assert faults_module.maybe_install_env_plan() is None
