"""Fixtures for the resilience suite: never leak an installed fault plan
into other tests (the plan registry is process-global by design)."""

import pytest

from repro.resilience import install_fault_plan


@pytest.fixture(autouse=True)
def clean_fault_plan():
    install_fault_plan(None)
    yield
    install_fault_plan(None)
