"""The chaos harness: the resilience layer's whole contract, property-
tested over random seeded fault schedules.

Each schedule draws 1-3 fault sites with random triggers (always / nth /
budgeted / probabilistic) from a seeded RNG and runs a full merge under a
rotating engine configuration (serial / thread / process executor, auto /
pure kernel, cold / warm alignment cache).  The invariant, for EVERY
schedule:

* a run that **completes** produces merge decisions bit-identical to the
  fault-free reference, and its module verifies;
* a run that **aborts** raises the typed :class:`ResilienceError` naming
  the exhausted fault site - never a bare crash, never a hang (deadlines
  bound every injected stall), never a half-committed module;
* the schedule is reproducible: the plan is rebuilt from its seed alone.

``REPRO_CHAOS_SCHEDULES`` scales the sweep (the CI chaos leg exports 200,
the local default keeps the tier-1 suite fast).  Failures name the
schedule index, which - via the seeded generator - pins the exact plan.
"""

import os
import random
import time

import pytest

from repro.core.pass_ import FunctionMergingPass
from repro.ir import verify_or_raise
from repro.resilience import (FAULT_SITES, FaultPlan, ResilienceError,
                              RetryPolicy, SiteTrigger)
from tests.core.test_offload import SEED_CONFIG, build_module, decisions

SCHEDULES = int(os.environ.get("REPRO_CHAOS_SCHEDULES", "12"))

MODULE_SEED = 5

#: (executor, jobs, alignment_kernel) rotations; the process rung is the
#: expensive one (real worker pools) and therefore appears once.
CONFIGS = (
    ("serial", 1, None),
    ("thread", 2, None),
    ("serial", 1, "nw"),
    ("process", 2, None),
)

_REFERENCE = None


def reference_decisions():
    global _REFERENCE
    if _REFERENCE is None:
        _REFERENCE = decisions(FunctionMergingPass(
            exploration_threshold=2,
            **SEED_CONFIG).run(build_module(MODULE_SEED)))
    return _REFERENCE


def random_plan(index: int) -> FaultPlan:
    """The schedule for one index - pure function of the index, so a
    failing case reproduces from its parametrize id alone."""
    rng = random.Random(0xC4A05 + index)
    sites = {}
    for site in rng.sample(FAULT_SITES, rng.randint(1, 3)):
        shape = rng.choice(("always", "nth", "budget", "prob"))
        if shape == "always":
            sites[site] = SiteTrigger(probability=1.0)
        elif shape == "nth":
            sites[site] = SiteTrigger(nth=rng.randint(1, 4))
        elif shape == "budget":
            sites[site] = SiteTrigger(probability=1.0,
                                      count=rng.randint(1, 2))
        else:
            sites[site] = SiteTrigger(probability=rng.choice((0.25, 0.75)))
        if site == "offload.worker_hang":
            # every injected hang costs a full task deadline plus a pool
            # respawn; an unbudgeted trigger could fire on every batch of
            # every retry, making one schedule take minutes while still
            # technically bounded.  Budget it - exhaustion coverage comes
            # from the cheap crash/corrupt sites.
            trigger = sites[site]
            sites[site] = SiteTrigger(probability=trigger.probability,
                                      nth=trigger.nth,
                                      count=min(trigger.count or 3, 3))
    return FaultPlan(seed=index, sites=sites)


def random_policy(index: int) -> RetryPolicy:
    rng = random.Random(0x9E71 + index)
    return RetryPolicy(max_attempts=rng.randint(2, 3),
                       task_deadline=0.75,
                       backoff_base=0.01, backoff_max=0.05,
                       fallback_inprocess=rng.choice((True, False)))


@pytest.fixture(scope="module")
def warm_snapshot(tmp_path_factory):
    """One clean warm snapshot, copied per schedule (saves may mutate)."""
    path = tmp_path_factory.mktemp("chaos") / "warm.json"
    FunctionMergingPass(
        exploration_threshold=2,
        alignment_cache_path=str(path)).run(build_module(MODULE_SEED))
    return path.read_bytes()


@pytest.mark.parametrize("index", range(SCHEDULES))
def test_chaos_schedule(index, tmp_path, warm_snapshot, recwarn,
                        assert_no_leaked_workers):
    executor, jobs, kernel = CONFIGS[index % len(CONFIGS)]
    cache_path = None
    if index % 2 == 1:  # warm-cache leg
        cache_path = str(tmp_path / "cache.json")
        with open(cache_path, "wb") as handle:
            handle.write(warm_snapshot)
    plan = random_plan(index)
    rebuilt = random_plan(index)
    assert rebuilt.seed == plan.seed and rebuilt.sites == plan.sites

    module = build_module(MODULE_SEED)
    start = time.monotonic()
    try:
        report = FunctionMergingPass(
            exploration_threshold=2, executor=executor, jobs=jobs,
            alignment_kernel=kernel, alignment_cache_path=cache_path,
            fault_plan=plan, retry_policy=random_policy(index)).run(module)
    except ResilienceError as error:
        # typed abort: the error names a real site of this schedule ...
        assert error.site in plan.sites
        # ... and the module was never left half-committed
        verify_or_raise(module)
    else:
        # completed: bit-identical to the fault-free reference
        assert decisions(report) == reference_decisions()
        verify_or_raise(module)
    # bounded: deadlines turned every injected hang into a detected
    # timeout (the injected sleep itself is an hour)
    assert time.monotonic() - start < 120.0
