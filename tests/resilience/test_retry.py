"""Retry-policy unit tests plus the offload integration story: injected
worker crashes / hangs / corrupted results are detected, retried on a
recycled pool, degraded to in-process solving, or surfaced as the typed
``ResilienceError`` - and every recovered run is bit-identical to the
fault-free one."""

import time

import pytest

from repro.core.engine import PlanningError, TaskFailure
from repro.core.pass_ import FunctionMergingPass
from repro.ir import verify_or_raise
from repro.resilience import FaultPlan, ResilienceError, RetryPolicy
from repro.resilience.retry import (RETRY_ATTEMPTS_ENV, RETRY_BACKOFF_ENV,
                                    RETRY_FALLBACK_ENV, TASK_DEADLINE_ENV)
from tests.core.test_offload import SEED_CONFIG, build_module, decisions

#: A forgiving policy for the recovery tests: quick backoff, short-but-fair
#: deadline, no fallback (recovery must come from the retry itself).
RECOVERING = RetryPolicy(max_attempts=3, task_deadline=60.0,
                         backoff_base=0.01, backoff_max=0.05)


def reference_decisions(seed=5):
    return decisions(FunctionMergingPass(
        exploration_threshold=2, **SEED_CONFIG).run(build_module(seed)))


class TestRetryPolicy:
    def test_default_policy_is_legacy_shaped(self):
        policy = RetryPolicy()
        assert policy.max_attempts == 1
        assert not policy.fallback_inprocess
        assert not policy.resilient

    def test_resilient_when_retrying_or_falling_back(self):
        assert RetryPolicy(max_attempts=2).resilient
        assert RetryPolicy(fallback_inprocess=True).resilient

    def test_backoff_is_exponential_capped_and_deterministic(self):
        policy = RetryPolicy(backoff_base=0.1, backoff_factor=2.0,
                             backoff_max=0.5)
        delays = [policy.backoff_delay(n) for n in range(1, 8)]
        assert delays == [policy.backoff_delay(n) for n in range(1, 8)]
        for attempt, delay in enumerate(delays, start=1):
            raw = min(0.5, 0.1 * 2.0 ** (attempt - 1))
            assert 0.5 * raw <= delay < raw  # jitter in [0.5, 1.0)
        assert policy.backoff_delay(0) == 0.0

    def test_from_env_overrides_and_ignores_garbage(self, monkeypatch):
        monkeypatch.setenv(RETRY_ATTEMPTS_ENV, "4")
        monkeypatch.setenv(TASK_DEADLINE_ENV, "2.5")
        monkeypatch.setenv(RETRY_BACKOFF_ENV, "0.2")
        monkeypatch.setenv(RETRY_FALLBACK_ENV, "yes")
        policy = RetryPolicy.from_env()
        assert policy == RetryPolicy(max_attempts=4, task_deadline=2.5,
                                     backoff_base=0.2, fallback_inprocess=True)
        monkeypatch.setenv(RETRY_ATTEMPTS_ENV, "banana")
        monkeypatch.setenv(TASK_DEADLINE_ENV, "0")  # non-positive: no deadline
        policy = RetryPolicy.from_env()
        assert policy.max_attempts == 1
        assert policy.task_deadline is None

    def test_engine_reads_policy_from_env(self, monkeypatch):
        from repro.core.engine import MergeEngine
        monkeypatch.setenv(RETRY_ATTEMPTS_ENV, "3")
        engine = MergeEngine(exploration_threshold=2)
        assert engine.retry_policy.max_attempts == 3
        explicit = MergeEngine(exploration_threshold=2,
                               retry_policy=RetryPolicy(max_attempts=7))
        assert explicit.retry_policy.max_attempts == 7


class TestOffloadRecovery:
    def test_default_policy_keeps_legacy_failure_shape(
            self, assert_no_leaked_workers):
        plan = FaultPlan.parse("seed=1,offload.worker_crash:nth=1:count=1")
        with pytest.raises(PlanningError) as excinfo:
            FunctionMergingPass(
                exploration_threshold=2, executor="process", jobs=2,
                fault_plan=plan).run(build_module(5))
        assert isinstance(excinfo.value.__cause__, TaskFailure)

    def test_worker_crash_is_retried_bit_identically(
            self, assert_no_leaked_workers):
        plan = FaultPlan.parse("seed=1,offload.worker_crash:nth=1:count=1")
        module = build_module(5)
        report = FunctionMergingPass(
            exploration_threshold=2, executor="process", jobs=2,
            fault_plan=plan, retry_policy=RECOVERING).run(module)
        assert decisions(report) == reference_decisions()
        verify_or_raise(module)
        stats = report.scheduler_stats
        assert stats["offload_retries"] >= 1
        assert stats["offload_pool_recycles"] >= 1
        assert plan.fired("offload.worker_crash") == 1

    def test_hung_worker_hits_the_deadline_and_recovers(
            self, assert_no_leaked_workers):
        plan = FaultPlan.parse("seed=2,offload.worker_hang:nth=1:count=1")
        policy = RetryPolicy(max_attempts=3, task_deadline=1.0,
                             backoff_base=0.01, backoff_max=0.05)
        start = time.monotonic()
        report = FunctionMergingPass(
            exploration_threshold=2, executor="process", jobs=2,
            fault_plan=plan, retry_policy=policy).run(build_module(5))
        elapsed = time.monotonic() - start
        assert decisions(report) == reference_decisions()
        # the hang was detected by the deadline, not waited out (the
        # injected sleep is an hour)
        assert elapsed < 30.0
        assert report.scheduler_stats["offload_deadline_timeouts"] >= 1
        assert report.scheduler_stats["offload_pool_recycles"] >= 1

    def test_corrupt_result_is_caught_before_the_cache(
            self, assert_no_leaked_workers):
        plan = FaultPlan.parse("seed=3,offload.result_corrupt:nth=1:count=1")
        report = FunctionMergingPass(
            exploration_threshold=2, executor="process", jobs=2,
            fault_plan=plan, retry_policy=RECOVERING).run(build_module(5))
        assert decisions(report) == reference_decisions()
        stats = report.scheduler_stats
        assert stats["offload_retries"] >= 1
        # the workers were healthy; validation failure must not recycle
        assert stats["offload_pool_recycles"] == 0

    def test_exhausted_attempts_raise_typed_resilience_error(
            self, assert_no_leaked_workers):
        plan = FaultPlan.parse("seed=1,offload.worker_crash")  # every attempt
        with pytest.raises(ResilienceError) as excinfo:
            FunctionMergingPass(
                exploration_threshold=2, executor="process", jobs=2,
                fault_plan=plan, retry_policy=RECOVERING).run(build_module(5))
        assert excinfo.value.site == "offload.worker_crash"
        assert not isinstance(excinfo.value, PlanningError)

    def test_inprocess_fallback_completes_a_doomed_pool(
            self, assert_no_leaked_workers):
        plan = FaultPlan.parse("seed=1,offload.worker_crash")  # every attempt
        policy = RetryPolicy(max_attempts=2, task_deadline=60.0,
                             backoff_base=0.01, fallback_inprocess=True)
        module = build_module(5)
        report = FunctionMergingPass(
            exploration_threshold=2, executor="process", jobs=2,
            fault_plan=plan, retry_policy=policy).run(module)
        assert decisions(report) == reference_decisions()
        verify_or_raise(module)
        stats = report.scheduler_stats
        assert stats["offload_inprocess_fallbacks"] >= 1
        events = stats["degradations"]
        assert any(e["component"] == "offload" and e["to"] == "in-process"
                   for e in events)
