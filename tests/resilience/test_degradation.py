"""The graceful-degradation ladders: alignment kernels step down
numpy -> pure (and abort typed from the bottom tier), the offload executor
falls back in-process, and every transition surfaces as a structured event
in ``scheduler_stats["degradations"]``."""

import warnings

import pytest

from repro.core import numpy_available
from repro.core.engine import MergeEngine
from repro.core.pass_ import FunctionMergingPass
from repro.resilience import FaultPlan, ResilienceError, RetryPolicy
from tests.core.test_offload import SEED_CONFIG, build_module, decisions


def reference_decisions(seed=5):
    return decisions(FunctionMergingPass(
        exploration_threshold=2, **SEED_CONFIG).run(build_module(seed)))


class TestKernelLadder:
    @pytest.mark.skipif(not numpy_available(), reason="requires numpy")
    def test_numpy_kernel_crash_degrades_to_pure_bit_identically(self):
        plan = FaultPlan.parse("seed=4,align.kernel_crash:nth=1:count=1")
        pass_ = FunctionMergingPass(
            exploration_threshold=2, alignment_kernel="nw-numpy",
            fault_plan=plan)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            report = pass_.run(build_module(5))
        assert decisions(report) == reference_decisions()
        # the downgrade is sticky: the stage now runs the pure kernel
        from repro.core.align_np import PURE_PYTHON_FALLBACKS
        pure = PURE_PYTHON_FALLBACKS["nw-numpy"]
        assert pass_.engine.alignment.algorithm == pure
        events = report.scheduler_stats["degradations"]
        assert any(e["component"] == "align-kernel"
                   and e["from"] == "nw-numpy" and e["to"] == pure
                   for e in events)
        assert report.stage_stats["align"]["kernel_degradations"] >= 1

    def test_pure_tier_crash_aborts_typed(self):
        # the bottom rung has nowhere to fall: the injected fault surfaces
        # as the typed ResilienceError, not a silent wrong answer
        plan = FaultPlan.parse("seed=4,align.kernel_crash:nth=1:count=1")
        with pytest.raises(ResilienceError) as excinfo:
            FunctionMergingPass(
                exploration_threshold=2, alignment_kernel="nw",
                fault_plan=plan).run(build_module(5))
        assert excinfo.value.site == "align.kernel_crash"

    def test_no_faults_means_no_degradations(self):
        report = FunctionMergingPass(
            exploration_threshold=2).run(build_module(5))
        assert report.scheduler_stats["degradations"] == []


class TestDegradationAccounting:
    def test_collect_degradations_is_cumulative_across_runs(self):
        # engine-lifetime semantics (like the resident-cache counters):
        # a second run still reports the first run's events
        plan = FaultPlan.parse("seed=1,offload.worker_crash:nth=1:count=1")
        policy = RetryPolicy(max_attempts=1, task_deadline=60.0,
                             backoff_base=0.01, fallback_inprocess=True)
        engine = MergeEngine(exploration_threshold=2, executor="process",
                             jobs=2, fault_plan=plan, retry_policy=policy)
        first = engine.run(build_module(5))
        events_first = first.scheduler_stats["degradations"]
        assert any(e["component"] == "offload" for e in events_first)
        second = engine.run(build_module(5))
        events_second = second.scheduler_stats["degradations"]
        assert len(events_second) >= len(events_first)
        assert decisions(first) == decisions(second) == reference_decisions()

    def test_events_carry_the_structured_shape(self):
        plan = FaultPlan.parse("seed=1,offload.worker_crash")
        policy = RetryPolicy(max_attempts=1, backoff_base=0.01,
                             task_deadline=60.0, fallback_inprocess=True)
        report = FunctionMergingPass(
            exploration_threshold=2, executor="process", jobs=2,
            fault_plan=plan, retry_policy=policy).run(build_module(5))
        for event in report.scheduler_stats["degradations"]:
            assert set(event) == {"component", "from", "to", "reason"}
