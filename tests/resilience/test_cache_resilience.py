"""Alignment-cache persistence under failure: snapshot saves are torn-write
proof (fsync + atomic rename; a simulated crash mid-write leaves the old
snapshot fully intact), and every I/O failure degrades - warm start to
cold, persistent to unsaved - without ever changing merge decisions."""

import glob
import os
import warnings

from repro.core.pass_ import FunctionMergingPass
from repro.resilience import FaultPlan, active_faults
from tests.core.test_offload import SEED_CONFIG, build_module, decisions


def reference_decisions(seed=11):
    return decisions(FunctionMergingPass(
        exploration_threshold=2, **SEED_CONFIG).run(build_module(seed)))


def run_with_cache(path, fault_plan=None, seed=11):
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", RuntimeWarning)
        return FunctionMergingPass(
            exploration_threshold=2, alignment_cache_path=path,
            fault_plan=fault_plan).run(build_module(seed))


class TestTornWriteProofSnapshots:
    def test_crash_mid_write_leaves_the_old_snapshot_intact(self, tmp_path):
        path = str(tmp_path / "cache.json")
        first = run_with_cache(path)
        assert decisions(first) == reference_decisions()
        with open(path, "rb") as handle:
            old_snapshot = handle.read()
        # second run: the save crashes between the temp write and the
        # atomic rename (the injected torn write)
        plan = FaultPlan.parse("seed=1,cache.snapshot_torn_write")
        second = run_with_cache(path, fault_plan=plan)
        assert decisions(second) == reference_decisions()
        assert plan.fired("cache.snapshot_torn_write") >= 1
        # the committed snapshot never saw the torn write ...
        with open(path, "rb") as handle:
            assert handle.read() == old_snapshot
        # ... and a third run warm-starts from it as if nothing happened
        third = run_with_cache(path)
        assert decisions(third) == reference_decisions()
        assert third.scheduler_stats["align_cache_cross_run_hits"] > 0
        events = second.scheduler_stats["degradations"]
        assert any(e["component"] == "cache" and e["to"] == "unsaved"
                   for e in events)

    def test_stray_temp_file_is_harmless_litter(self, tmp_path):
        path = str(tmp_path / "cache.json")
        run_with_cache(path)
        plan = FaultPlan.parse("seed=1,cache.snapshot_torn_write")
        run_with_cache(path, fault_plan=plan)
        strays = glob.glob(f"{path}.tmp.*")
        assert strays  # the simulated crash left its partial temp file
        # a warm start ignores it entirely
        report = run_with_cache(path)
        assert decisions(report) == reference_decisions()


class TestSnapshotIOFailures:
    def test_unreadable_snapshot_degrades_warm_to_cold(self, tmp_path):
        path = str(tmp_path / "cache.json")
        run_with_cache(path)
        # nth=1: the load blows up, the end-of-run save (hit 2) succeeds
        plan = FaultPlan.parse("seed=1,cache.snapshot_io:nth=1")
        report = run_with_cache(path, fault_plan=plan)
        assert decisions(report) == reference_decisions()
        assert report.scheduler_stats["align_cache_cross_run_hits"] == 0
        events = report.scheduler_stats["degradations"]
        assert any(e["component"] == "cache" and e["from"] == "warm"
                   and e["to"] == "cold" for e in events)

    def test_unwritable_snapshot_degrades_to_unsaved(self, tmp_path):
        path = str(tmp_path / "cache.json")
        plan = FaultPlan.parse("seed=1,cache.snapshot_io")
        report = run_with_cache(path, fault_plan=plan)
        assert decisions(report) == reference_decisions()
        assert not os.path.exists(path)
        events = report.scheduler_stats["degradations"]
        assert any(e["component"] == "cache" and e["from"] == "persistent"
                   and e["to"] == "unsaved" for e in events)

    def test_corrupt_snapshot_bytes_degrade_warm_to_cold(self, tmp_path):
        # organic (non-injected) corruption takes the same degradation
        # path: checksum rejects the file, the run starts cold
        path = str(tmp_path / "cache.json")
        run_with_cache(path)
        with open(path, "r+b") as handle:
            handle.seek(os.path.getsize(path) // 2)
            handle.write(b"GARBAGE")
        report = run_with_cache(path)
        assert decisions(report) == reference_decisions()
        events = report.scheduler_stats["degradations"]
        assert any(e["component"] == "cache" and e["to"] == "cold"
                   for e in events)

    def test_cache_level_degradations_reset_with_clear(self, tmp_path):
        from repro.core.engine import AlignmentCache
        cache = AlignmentCache(capacity=16)
        with active_faults(FaultPlan.parse("seed=1,cache.snapshot_io")):
            cache.put(("k", 1, 2), "m", 1)
            assert cache.save(str(tmp_path / "c.json")) is False
        assert len(cache.degradations) == 1
        assert cache.stats_dict()["align_cache_degradations"] == 1
        cache.clear()
        assert cache.degradations == []
