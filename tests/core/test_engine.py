"""Tests for the staged MergeEngine: pipeline structure, strategy parity and
the integer equivalence keys backing the fast alignment kernel."""

import random

import pytest

from repro.core import (EquivalenceKeyInterner, FunctionMergingPass,
                        IndexedCandidateSearcher, MergeEngine, MergeOptions,
                        entries_equivalent, linearize, linearize_with_keys)
from repro.core.engine import STAGES
from repro.ir import Module, verify_or_raise
from repro.passes.reg2mem import demote_phis
from repro.workloads import (FamilySpec, FunctionSpec, clone_function,
                             make_family, mutate_constants, mutate_opcodes)

from tests.helpers import make_binary_chain_function, make_caller, run_function


def _module_with_families(num_families=2, clones_per_family=2, seed=5):
    module = Module("families")
    rng = random.Random(seed)
    functions = []
    for family in range(num_families):
        opcodes = [["add", "mul", "add"], ["sub", "xor", "add", "mul"]][family % 2]
        base = make_binary_chain_function(module, f"base{family}", opcodes,
                                          constant=family + 2)
        functions.append(base)
        for index in range(clones_per_family):
            sibling = clone_function(module, base, f"base{family}_v{index}")
            mutate_constants(sibling, rng, 0.4)
            if index % 2:
                mutate_opcodes(sibling, rng, 0.2)
            functions.append(sibling)
    make_caller(module, "main", functions)
    return module, functions


def _generated_module(seed=3):
    module = Module("gen")
    rng = random.Random(seed)
    spec = FunctionSpec("g", num_blocks=3, instructions_per_block=8,
                        call_ratio=0.3, memory_ratio=0.3, seed=seed)
    make_family(module, spec, FamilySpec(identical=1, structural=2, partial=1), rng)
    return module


def _decisions(report):
    return [(m.function1, m.function2, m.merged_name, m.rank_position, m.delta)
            for m in report.merges]


class TestEquivalenceKeys:
    def test_keys_faithful_to_predicate_on_generated_module(self):
        module = _generated_module()
        interner = EquivalenceKeyInterner()
        keyed_entries = []
        for function in module.defined_functions():
            demote_phis(function)
            lin = linearize_with_keys(function, "rpo", interner)
            assert len(lin.keys) == len(lin.entries)
            keyed_entries.extend(zip(lin.entries, lin.keys))
        for entry_a, key_a in keyed_entries:
            for entry_b, key_b in keyed_entries:
                assert entries_equivalent(entry_a, entry_b) == (key_a == key_b)

    def test_interner_is_shared_across_functions(self):
        module = _module_with_families()[0]
        interner = EquivalenceKeyInterner()
        functions = list(module.defined_functions())
        lin_a = linearize_with_keys(functions[0], "rpo", interner)
        lin_b = linearize_with_keys(functions[1], "rpo", interner)
        # identical opcode chains across clones share equivalence classes
        assert set(lin_a.keys) & set(lin_b.keys)

    def test_default_interner_created_on_demand(self):
        module = _module_with_families()[0]
        function = next(iter(module.defined_functions()))
        lin = linearize_with_keys(function)
        assert len(lin.keys) == len(linearize(function))


class TestEnginePipeline:
    def test_stage_pipeline_order(self):
        engine = MergeEngine()
        names = [stage.name for stage in engine.stages]
        assert names == ["preprocess", "fingerprint", "candidate-search",
                         "linearize", "align", "codegen", "profitability",
                         "commit"]

    def test_stage_stats_recorded(self):
        module, _ = _module_with_families()
        engine = MergeEngine(exploration_threshold=2)
        report = engine.run(module)
        assert report.merge_count >= 1
        stats = report.stage_stats
        assert set(stats) == {s.name for s in engine.stages}
        assert stats["align"]["seconds"] > 0.0
        assert stats["align"]["keyed"] >= 1
        assert stats["candidate-search"]["calls"] >= 1
        assert stats["commit"]["merges"] == report.merge_count
        # legacy buckets still exactly the Figure-13 stages
        assert set(report.stage_times) == set(STAGES)

    def test_report_reset_between_runs(self):
        # threshold=1 leaves no spare ranking slots: any fingerprint leaked
        # from the first run would displace the sole candidate of the second
        engine = MergeEngine(exploration_threshold=1)
        module1, _ = _module_with_families(num_families=3)
        first = engine.run(module1)
        module2, _ = _module_with_families(num_families=3)
        second = engine.run(module2)
        fresh = MergeEngine(exploration_threshold=1).run(
            _module_with_families(num_families=3)[0])
        assert _decisions(first) == _decisions(second) == _decisions(fresh)
        assert second.stage_stats["commit"]["merges"] == second.merge_count
        # custom searcher instances are cleared per run too
        reused = IndexedCandidateSearcher(exploration_threshold=1)
        shared = MergeEngine(exploration_threshold=1, searcher=reused)
        shared.run(_module_with_families(num_families=3)[0])
        repeat = shared.run(_module_with_families(num_families=3)[0])
        assert _decisions(repeat) == _decisions(fresh)

    def test_engine_behind_pass_facade(self):
        pass_ = FunctionMergingPass(exploration_threshold=2)
        assert isinstance(pass_.engine, MergeEngine)
        assert pass_.exploration_threshold == 2
        assert pass_.oracle is False
        assert pass_.options is pass_.engine.options

    def test_unknown_searcher_rejected(self):
        with pytest.raises(ValueError):
            MergeEngine(searcher="nope")


class TestStrategyParity:
    """Every stage strategy combination makes identical merge decisions."""

    CONFIGS = (
        dict(searcher="linear", keyed_alignment=False),   # seed-equivalent
        dict(searcher="linear", keyed_alignment=True),
        dict(searcher="indexed", keyed_alignment=False),
        dict(searcher="indexed", keyed_alignment=True),   # engine default
    )

    def _run(self, threshold=2, oracle=False, **kwargs):
        module, _ = _module_with_families(num_families=3)
        report = FunctionMergingPass(exploration_threshold=threshold,
                                     oracle=oracle, **kwargs).run(module)
        verify_or_raise(module)
        return _decisions(report)

    def test_all_strategies_agree(self):
        reference = self._run(**self.CONFIGS[0])
        assert reference  # at least one merge so the comparison means something
        for config in self.CONFIGS[1:]:
            assert self._run(**config) == reference

    def test_strategies_agree_under_oracle(self):
        reference = self._run(oracle=True, **self.CONFIGS[0])
        for config in self.CONFIGS[1:]:
            assert self._run(oracle=True, **config) == reference

    def test_banded_alignment_same_decisions_and_semantics(self):
        options = MergeOptions(alignment_algorithm="nw-banded")
        reference = self._run(**self.CONFIGS[0])
        assert self._run(options=options) == reference

        module, _ = _module_with_families()
        pristine, _ = _module_with_families()
        report = FunctionMergingPass(exploration_threshold=2,
                                     options=options).run(module)
        assert report.merge_count >= 1
        verify_or_raise(module)
        for n in (0, 3, 11):
            assert (run_function(module, "main", [n])
                    == run_function(pristine, "main", [n]))

    def test_caller_caches_invalidated_after_call_site_rewrite(self):
        # Regression: apply_merge rewrites call sites inside *caller*
        # functions; their cached linearizations (and the equivalence keys
        # frozen into them) must be invalidated.  With stale keys the keyed
        # kernel used to match a mutated 'call e1' entry against a fresh
        # 'call __merged_e1_e2' and crash in codegen.
        from repro.ir import IRBuilder
        from repro.ir import types as ty
        from repro.ir import values as vals

        def build():
            module = Module("stale_callers")

            def chain(name, opcodes, callee=None):
                fn = module.create_function(name, ty.function_type(ty.I32, [ty.I32]))
                builder = IRBuilder(fn.append_block("entry"))
                value = fn.arguments[0]
                for op in opcodes:
                    value = builder.binary(op, value, vals.const_int(3))
                if callee is not None:
                    value = builder.call(callee, [value])
                builder.ret(value)
                return fn

            shared = ["add", "mul", "add", "xor", "sub", "add"]
            e1 = chain("e1", shared)
            chain("e2", shared)
            # a1/d: same opcode multiset, different order (fingerprint ties,
            # unprofitable alignment caches a1 before e1+e2 merges); m2 is
            # identical to a1 and is evaluated after the rewrite
            chain("a1", ["add", "sub", "mul", "xor"], e1)
            chain("d", ["xor", "mul", "sub", "add"], e1)
            chain("m2", ["add", "sub", "mul", "xor"], e1)
            return module

        decisions = []
        for config in self.CONFIGS:
            module = build()
            report = FunctionMergingPass(exploration_threshold=1,
                                         **config).run(module)
            verify_or_raise(module)
            decisions.append(_decisions(report))
        assert all(d == decisions[0] for d in decisions[1:])
        # the callers merge too once their rewritten bodies are re-linearized
        merged_pairs = {(d[0], d[1]) for d in decisions[0]}
        assert ("e1", "e2") in merged_pairs
        assert ("m2", "a1") in merged_pairs

    def test_generated_module_parity(self):
        decisions = []
        for config in self.CONFIGS:
            module = _generated_module()
            report = FunctionMergingPass(exploration_threshold=3,
                                         **config).run(module)
            verify_or_raise(module)
            decisions.append(_decisions(report))
        assert all(d == decisions[0] for d in decisions[1:])
