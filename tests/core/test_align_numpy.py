"""Property tests for the NumPy alignment backend.

The contract of :mod:`repro.core.align_np` is *bit-identical output*: for
every pair of sequences, every scoring scheme, and both the full and the
banded variant (certified or fallen back), the vectorized kernels return the
same score and the same entry list - same tie-breaking included - as the
pure-Python :func:`needleman_wunsch`.  The NumPy-absent behaviour (a clear
error naming the ``fast`` extra for explicit requests, a warned pure-Python
downgrade for the environment knob) is tested by simulating a failed
import.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import align_np
from repro.core.align_np import (needleman_wunsch_banded_numpy,
                                 needleman_wunsch_banded_numpy_keyed,
                                 needleman_wunsch_numpy,
                                 needleman_wunsch_numpy_keyed,
                                 numpy_available)
from repro.core.alignment import (ALGORITHMS, ScoringScheme, align,
                                  needleman_wunsch, needleman_wunsch_keyed)
from repro.core.engine.stages import AlignmentStage, resolve_alignment_kernel

requires_numpy = pytest.mark.skipif(not numpy_available(),
                                    reason="NumPy not installed")

short_text = st.text(alphabet="ABCD", max_size=14)
scorings = st.builds(ScoringScheme,
                     match=st.integers(1, 3),
                     mismatch=st.integers(-3, 0),
                     gap=st.integers(-3, 0))
band_margins = st.one_of(st.none(), st.integers(min_value=0, max_value=6))


def entry_pairs(result):
    return [(e.left, e.right) for e in result.entries]


def assert_same(got, want):
    assert got.score == want.score
    assert entry_pairs(got) == entry_pairs(want)


# -- exact parity with the pure-Python kernels --------------------------------

@requires_numpy
@settings(max_examples=100, deadline=None)
@given(short_text, short_text, scorings)
def test_numpy_full_matches_nw_entries_and_score(seq1, seq2, scoring):
    want = needleman_wunsch(seq1, seq2, scoring=scoring)
    assert_same(needleman_wunsch_numpy(seq1, seq2, scoring=scoring), want)


@requires_numpy
@settings(max_examples=100, deadline=None)
@given(short_text, short_text, scorings)
def test_numpy_keyed_matches_keyed_kernel(seq1, seq2, scoring):
    keys1 = [ord(c) for c in seq1]
    keys2 = [ord(c) for c in seq2]
    want = needleman_wunsch_keyed(seq1, seq2, keys1, keys2, scoring)
    got = needleman_wunsch_numpy_keyed(seq1, seq2, keys1, keys2, scoring)
    assert_same(got, want)
    assert_same(got, needleman_wunsch(seq1, seq2, scoring=scoring))


@requires_numpy
@settings(max_examples=100, deadline=None)
@given(short_text, short_text, scorings, band_margins)
def test_numpy_banded_matches_nw_incl_fallback(seq1, seq2, scoring, margin):
    """Tiny margins force the certificate to fail on dissimilar pairs, so
    this exercises both the certified band and the full-DP fallback."""
    want = needleman_wunsch(seq1, seq2, scoring=scoring)
    keys1 = [ord(c) for c in seq1]
    keys2 = [ord(c) for c in seq2]
    assert_same(needleman_wunsch_banded_numpy_keyed(
        seq1, seq2, keys1, keys2, scoring, band_margin=margin), want)
    assert_same(needleman_wunsch_banded_numpy(
        seq1, seq2, scoring=scoring, band_margin=margin), want)


@requires_numpy
@pytest.mark.parametrize("seq1,seq2", [("", ""), ("", "ABC"), ("ABC", ""),
                                       ("A", "A"), ("A", "B"),
                                       ("AAAA", "AAAA")])
def test_numpy_degenerate_sequences(seq1, seq2):
    want = needleman_wunsch(seq1, seq2)
    keys1, keys2 = [ord(c) for c in seq1], [ord(c) for c in seq2]
    assert_same(needleman_wunsch_numpy(seq1, seq2), want)
    assert_same(needleman_wunsch_numpy_keyed(seq1, seq2, keys1, keys2), want)
    assert_same(needleman_wunsch_banded_numpy(seq1, seq2), want)
    assert_same(needleman_wunsch_banded_numpy_keyed(seq1, seq2, keys1, keys2),
                want)


@requires_numpy
def test_numpy_banded_certifies_near_identical_pair_without_fallback():
    import numpy as np
    keys1 = list(range(300))
    keys2 = list(range(300))
    keys2[150] = 99999
    k1 = np.asarray(keys1, dtype=np.int64)
    k2 = np.asarray(keys2, dtype=np.int64)

    def eq_row_fn(i, js):
        return k1[i] == k2[js - 1]

    certified = align_np._try_banded_numpy(
        np, keys1, keys2, eq_row_fn,
        lambda i, j: keys1[i] == keys2[j], ScoringScheme(),
        align_np.derive_band_margin(keys1, keys2))
    assert certified is not None  # narrow band, no full-DP fallback
    assert_same(certified, needleman_wunsch_keyed(keys1, keys2, keys1, keys2))


@requires_numpy
def test_front_door_dispatches_numpy_algorithms():
    want = needleman_wunsch("ABCA", "ABDA")
    assert_same(align("ABCA", "ABDA", algorithm="nw-numpy"), want)
    assert_same(align("ABCA", "ABDA", algorithm="nw-banded-numpy"), want)
    assert "nw-numpy" in ALGORITHMS and "nw-banded-numpy" in ALGORITHMS


@requires_numpy
def test_scores_are_plain_ints():
    result = needleman_wunsch_numpy_keyed("ABC", "ABD", [1, 2, 3], [1, 2, 4])
    assert type(result.score) is int
    banded = needleman_wunsch_banded_numpy_keyed("ABC", "ABD",
                                                 [1, 2, 3], [1, 2, 4])
    assert type(banded.score) is int


# -- kernel resolution: explicit / env / auto ---------------------------------

@requires_numpy
def test_stage_kernel_argument_overrides_algorithm():
    stage = AlignmentStage(kernel="nw-numpy", algorithm="needleman-wunsch")
    assert stage.algorithm == "nw-numpy"


@requires_numpy
def test_env_knob_selects_kernel(monkeypatch):
    monkeypatch.setenv("REPRO_ALIGN_KERNEL", "nw-numpy")
    assert AlignmentStage().algorithm == "nw-numpy"
    # an explicit kernel still wins over the environment
    monkeypatch.setenv("REPRO_ALIGN_KERNEL", "nw-banded-numpy")
    assert AlignmentStage(kernel="nw-banded").algorithm == "nw-banded"


def test_auto_kernel_resolution(monkeypatch):
    from repro.core import native
    if native.native_available():
        assert resolve_alignment_kernel("auto", "needleman-wunsch") == \
            "nw-native"
    monkeypatch.setattr(native, "_native", False)  # simulate no extension
    if numpy_available():
        assert resolve_alignment_kernel("auto", "needleman-wunsch") == "nw-numpy"
    monkeypatch.setattr(align_np, "_numpy", False)
    assert resolve_alignment_kernel("auto", "needleman-wunsch") == \
        "needleman-wunsch"


def test_unknown_kernel_rejected():
    with pytest.raises(ValueError, match="unknown alignment kernel"):
        AlignmentStage(kernel="nw-gpu")


# -- behaviour without NumPy --------------------------------------------------

class TestWithoutNumpy:
    """Simulate an environment where the ``fast`` extra is not installed."""

    @pytest.fixture(autouse=True)
    def no_numpy(self, monkeypatch):
        monkeypatch.setattr(align_np, "_numpy", False)
        # isolate from an ambient REPRO_ALIGN_KERNEL (the CI numpy leg
        # exports one); env-sourced requests downgrade instead of raising
        monkeypatch.delenv("REPRO_ALIGN_KERNEL", raising=False)

    def test_kernel_call_raises_naming_the_extra(self):
        with pytest.raises(ImportError, match="fast"):
            needleman_wunsch_numpy_keyed("AB", "AB", [1, 2], [1, 2])
        with pytest.raises(ImportError, match="repro\\[fast\\]"):
            align("AB", "AB", algorithm="nw-numpy")

    def test_explicit_stage_request_raises(self):
        with pytest.raises(ImportError, match="fast"):
            AlignmentStage(kernel="nw-numpy")
        with pytest.raises(ImportError, match="fast"):
            AlignmentStage(algorithm="nw-banded-numpy")

    def test_env_request_warns_and_downgrades(self, monkeypatch):
        monkeypatch.setenv("REPRO_ALIGN_KERNEL", "nw-numpy")
        with pytest.warns(RuntimeWarning, match="falling back"):
            stage = AlignmentStage()
        assert stage.algorithm == "needleman-wunsch"
        monkeypatch.setenv("REPRO_ALIGN_KERNEL", "nw-banded-numpy")
        with pytest.warns(RuntimeWarning, match="falling back"):
            assert AlignmentStage().algorithm == "nw-banded"

    def test_pure_python_engine_still_runs(self):
        import random

        from repro.core import FunctionMergingPass
        from repro.ir import Module
        from repro.workloads import FamilySpec, FunctionSpec, make_family

        module = Module("no_numpy")
        make_family(module, FunctionSpec("f", seed=1),
                    FamilySpec(identical=1), random.Random(0))
        report = FunctionMergingPass().run(module)
        assert report.merge_count >= 1
