"""Tests for fingerprints, the UB similarity estimate and candidate ranking."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import CandidateRanker, Fingerprint, fingerprint_module, similarity
from repro.ir import Module
from repro.ir import types as ty
from repro.workloads import clone_function, mutate_opcodes

from tests.helpers import make_accumulator_function, make_binary_chain_function


def _module_with_functions():
    module = Module()
    add_like = make_binary_chain_function(module, "add_like", ["add", "add"])
    sub_like = make_binary_chain_function(module, "sub_like", ["add", "sub"])
    loop = make_accumulator_function(module, "loop")
    return module, add_like, sub_like, loop


class TestFingerprint:
    def test_opcode_frequencies_counted(self):
        module, add_like, _, _ = _module_with_functions()
        fp = Fingerprint.of(add_like)
        assert fp.opcode_freq["add"] == 2
        assert fp.opcode_freq["ret"] == 2
        assert fp.size == add_like.instruction_count()

    def test_type_frequencies_include_operands(self):
        module, add_like, _, _ = _module_with_functions()
        fp = Fingerprint.of(add_like)
        assert fp.type_freq[("int", 32)] > 0

    def test_identical_functions_score_half(self):
        module, add_like, _, _ = _module_with_functions()
        clone = clone_function(module, add_like, "add_clone")
        assert similarity(Fingerprint.of(add_like), Fingerprint.of(clone)) == pytest.approx(0.5)

    def test_similarity_is_symmetric_and_bounded(self):
        module, add_like, sub_like, loop = _module_with_functions()
        fps = [Fingerprint.of(f) for f in (add_like, sub_like, loop)]
        for a in fps:
            for b in fps:
                s = similarity(a, b)
                assert 0.0 <= s <= 0.5
                assert s == pytest.approx(similarity(b, a))

    def test_similar_functions_rank_above_dissimilar(self):
        module, add_like, sub_like, loop = _module_with_functions()
        fp = Fingerprint.of(add_like)
        assert similarity(fp, Fingerprint.of(sub_like)) > similarity(fp, Fingerprint.of(loop))

    def test_fingerprint_module_keys_by_name(self):
        module, *_ = _module_with_functions()
        table = fingerprint_module(module.defined_functions())
        assert set(table) == {"add_like", "sub_like", "loop"}

    def test_disjoint_functions_score_zero(self):
        module = Module()
        int_fn = make_binary_chain_function(module, "ints", ["add"])
        # a function with completely different opcodes and types
        other = module.create_function("floats", ty.function_type(ty.DOUBLE, [ty.DOUBLE]))
        from repro.ir import IRBuilder
        from repro.ir import values as vals
        builder = IRBuilder(other.append_block("entry"))
        builder.ret(builder.fadd(other.arguments[0], vals.const_float(1.0)))
        score = similarity(Fingerprint.of(int_fn), Fingerprint.of(other))
        assert score < 0.2


class TestUpperBoundFormula:
    @settings(max_examples=50, deadline=None)
    @given(st.dictionaries(st.sampled_from("abcdef"), st.integers(1, 20), max_size=6),
           st.dictionaries(st.sampled_from("abcdef"), st.integers(1, 20), max_size=6))
    def test_upper_bound_range_and_symmetry(self, freq1, freq2):
        from collections import Counter

        from repro.core.fingerprint import _upper_bound
        a, b = Counter(freq1), Counter(freq2)
        ub = _upper_bound(a, b)
        assert 0.0 <= ub <= 0.5
        assert ub == pytest.approx(_upper_bound(b, a))

    def test_identical_multisets_give_exactly_half(self):
        from collections import Counter

        from repro.core.fingerprint import _upper_bound
        counts = Counter({"add": 3, "mul": 2})
        assert _upper_bound(counts, counts) == pytest.approx(0.5)


class TestRanker:
    def test_top_candidate_is_most_similar(self):
        module, add_like, sub_like, loop = _module_with_functions()
        clone = clone_function(module, add_like, "add_clone")
        ranker = CandidateRanker(exploration_threshold=3)
        ranker.add_functions(module.defined_functions())
        candidates = ranker.rank_candidates("add_like")
        assert candidates[0].function_name == "add_clone"
        assert candidates[0].position == 1
        assert candidates[0].score == pytest.approx(0.5)

    def test_threshold_limits_candidates(self):
        module, *_ = _module_with_functions()
        ranker = CandidateRanker(exploration_threshold=1)
        ranker.add_functions(module.defined_functions())
        assert len(ranker.rank_candidates("add_like")) == 1
        # limit=0 means oracle: every other function is ranked
        assert len(ranker.rank_candidates("add_like", limit=0)) == 2

    def test_remove_function_excludes_it(self):
        module, *_ = _module_with_functions()
        ranker = CandidateRanker(exploration_threshold=5)
        ranker.add_functions(module.defined_functions())
        ranker.remove_function("sub_like")
        names = [c.function_name for c in ranker.rank_candidates("add_like")]
        assert "sub_like" not in names
        assert "sub_like" not in ranker

    def test_positions_are_sequential(self):
        module, *_ = _module_with_functions()
        ranker = CandidateRanker(exploration_threshold=5)
        ranker.add_functions(module.defined_functions())
        positions = [c.position for c in ranker.rank_candidates("loop")]
        assert positions == list(range(1, len(positions) + 1))

    def test_unknown_function_returns_empty(self):
        ranker = CandidateRanker()
        assert ranker.rank_candidates("nope") == []

    def test_invalid_threshold_rejected(self):
        with pytest.raises(ValueError):
            CandidateRanker(exploration_threshold=0)

    def test_ranker_length_and_known_functions(self):
        module, *_ = _module_with_functions()
        ranker = CandidateRanker()
        ranker.add_functions(module.defined_functions())
        assert len(ranker) == 3
        assert ranker.known_functions() == ["add_like", "loop", "sub_like"]
