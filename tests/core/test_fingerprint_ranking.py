"""Tests for fingerprints, the UB similarity estimate and candidate ranking."""

from collections import Counter

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (CandidateRanker, Fingerprint, IndexedCandidateSearcher,
                        fingerprint_module, make_searcher, similarity)
from repro.ir import Module
from repro.ir import types as ty
from repro.workloads import clone_function, mutate_opcodes

from tests.helpers import make_accumulator_function, make_binary_chain_function


def _module_with_functions():
    module = Module()
    add_like = make_binary_chain_function(module, "add_like", ["add", "add"])
    sub_like = make_binary_chain_function(module, "sub_like", ["add", "sub"])
    loop = make_accumulator_function(module, "loop")
    return module, add_like, sub_like, loop


class TestFingerprint:
    def test_opcode_frequencies_counted(self):
        module, add_like, _, _ = _module_with_functions()
        fp = Fingerprint.of(add_like)
        assert fp.opcode_freq["add"] == 2
        assert fp.opcode_freq["ret"] == 2
        assert fp.size == add_like.instruction_count()

    def test_type_frequencies_include_operands(self):
        module, add_like, _, _ = _module_with_functions()
        fp = Fingerprint.of(add_like)
        assert fp.type_freq[("int", 32)] > 0

    def test_identical_functions_score_half(self):
        module, add_like, _, _ = _module_with_functions()
        clone = clone_function(module, add_like, "add_clone")
        assert similarity(Fingerprint.of(add_like), Fingerprint.of(clone)) == pytest.approx(0.5)

    def test_similarity_is_symmetric_and_bounded(self):
        module, add_like, sub_like, loop = _module_with_functions()
        fps = [Fingerprint.of(f) for f in (add_like, sub_like, loop)]
        for a in fps:
            for b in fps:
                s = similarity(a, b)
                assert 0.0 <= s <= 0.5
                assert s == pytest.approx(similarity(b, a))

    def test_similar_functions_rank_above_dissimilar(self):
        module, add_like, sub_like, loop = _module_with_functions()
        fp = Fingerprint.of(add_like)
        assert similarity(fp, Fingerprint.of(sub_like)) > similarity(fp, Fingerprint.of(loop))

    def test_fingerprint_module_keys_by_name(self):
        module, *_ = _module_with_functions()
        table = fingerprint_module(module.defined_functions())
        assert set(table) == {"add_like", "sub_like", "loop"}

    def test_disjoint_functions_score_zero(self):
        module = Module()
        int_fn = make_binary_chain_function(module, "ints", ["add"])
        # a function with completely different opcodes and types
        other = module.create_function("floats", ty.function_type(ty.DOUBLE, [ty.DOUBLE]))
        from repro.ir import IRBuilder
        from repro.ir import values as vals
        builder = IRBuilder(other.append_block("entry"))
        builder.ret(builder.fadd(other.arguments[0], vals.const_float(1.0)))
        score = similarity(Fingerprint.of(int_fn), Fingerprint.of(other))
        assert score < 0.2


class TestUpperBoundFormula:
    @settings(max_examples=50, deadline=None)
    @given(st.dictionaries(st.sampled_from("abcdef"), st.integers(1, 20), max_size=6),
           st.dictionaries(st.sampled_from("abcdef"), st.integers(1, 20), max_size=6))
    def test_upper_bound_range_and_symmetry(self, freq1, freq2):
        from collections import Counter

        from repro.core.fingerprint import _upper_bound
        a, b = Counter(freq1), Counter(freq2)
        ub = _upper_bound(a, b)
        assert 0.0 <= ub <= 0.5
        assert ub == pytest.approx(_upper_bound(b, a))

    def test_identical_multisets_give_exactly_half(self):
        from collections import Counter

        from repro.core.fingerprint import _upper_bound
        counts = Counter({"add": 3, "mul": 2})
        assert _upper_bound(counts, counts) == pytest.approx(0.5)


class TestRanker:
    def test_top_candidate_is_most_similar(self):
        module, add_like, sub_like, loop = _module_with_functions()
        clone = clone_function(module, add_like, "add_clone")
        ranker = CandidateRanker(exploration_threshold=3)
        ranker.add_functions(module.defined_functions())
        candidates = ranker.rank_candidates("add_like")
        assert candidates[0].function_name == "add_clone"
        assert candidates[0].position == 1
        assert candidates[0].score == pytest.approx(0.5)

    def test_threshold_limits_candidates(self):
        module, *_ = _module_with_functions()
        ranker = CandidateRanker(exploration_threshold=1)
        ranker.add_functions(module.defined_functions())
        assert len(ranker.rank_candidates("add_like")) == 1
        # limit=0 means oracle: every other function is ranked
        assert len(ranker.rank_candidates("add_like", limit=0)) == 2

    def test_remove_function_excludes_it(self):
        module, *_ = _module_with_functions()
        ranker = CandidateRanker(exploration_threshold=5)
        ranker.add_functions(module.defined_functions())
        ranker.remove_function("sub_like")
        names = [c.function_name for c in ranker.rank_candidates("add_like")]
        assert "sub_like" not in names
        assert "sub_like" not in ranker

    def test_positions_are_sequential(self):
        module, *_ = _module_with_functions()
        ranker = CandidateRanker(exploration_threshold=5)
        ranker.add_functions(module.defined_functions())
        positions = [c.position for c in ranker.rank_candidates("loop")]
        assert positions == list(range(1, len(positions) + 1))

    def test_unknown_function_returns_empty(self):
        ranker = CandidateRanker()
        assert ranker.rank_candidates("nope") == []

    def test_invalid_threshold_rejected(self):
        with pytest.raises(ValueError):
            CandidateRanker(exploration_threshold=0)

    def test_ranker_length_and_known_functions(self):
        module, *_ = _module_with_functions()
        ranker = CandidateRanker()
        ranker.add_functions(module.defined_functions())
        assert len(ranker) == 3
        assert ranker.known_functions() == ["add_like", "loop", "sub_like"]


# -- indexed searcher: exact parity with the linear ranker -------------------

#: Small alphabets and count ranges so hypothesis hits plenty of score ties,
#: which is where heap/ordering behaviour could plausibly diverge.
fingerprint_sets = st.lists(
    st.tuples(st.dictionaries(st.sampled_from("abcdef"), st.integers(1, 4), max_size=4),
              st.dictionaries(st.sampled_from("wxyz"), st.integers(1, 4), max_size=3)),
    min_size=1, max_size=12)


def _ranked_tuples(searcher, name, limit):
    return [(c.function_name, c.score, c.position)
            for c in searcher.rank_candidates(name, limit)]


class TestIndexedSearcherParity:
    @settings(max_examples=120, deadline=None)
    @given(fingerprint_sets, st.sampled_from([None, 0, 1, 2, 5]),
           st.integers(1, 4))
    def test_identical_topt_to_linear_ranker(self, raw, limit, threshold):
        linear = CandidateRanker(exploration_threshold=threshold)
        indexed = IndexedCandidateSearcher(exploration_threshold=threshold)
        for i, (opcodes, types) in enumerate(raw):
            fp = Fingerprint(f"f{i}", Counter(opcodes), Counter(types),
                             sum(opcodes.values()))
            linear.add_fingerprint(fp)
            indexed.add_fingerprint(fp)
        for i in range(len(raw)):
            assert (_ranked_tuples(indexed, f"f{i}", limit)
                    == _ranked_tuples(linear, f"f{i}", limit))

    @settings(max_examples=60, deadline=None)
    @given(fingerprint_sets, st.lists(st.integers(0, 11), max_size=4))
    def test_parity_survives_removals(self, raw, removals):
        linear = CandidateRanker(exploration_threshold=3)
        indexed = IndexedCandidateSearcher(exploration_threshold=3)
        for i, (opcodes, types) in enumerate(raw):
            fp = Fingerprint(f"f{i}", Counter(opcodes), Counter(types),
                             sum(opcodes.values()))
            linear.add_fingerprint(fp)
            indexed.add_fingerprint(fp)
        for index in removals:
            linear.remove_function(f"f{index}")
            indexed.remove_function(f"f{index}")
        assert indexed.known_functions() == linear.known_functions()
        for name in linear.known_functions():
            assert (_ranked_tuples(indexed, name, None)
                    == _ranked_tuples(linear, name, None))

    def test_parity_on_real_module(self):
        module, add_like, sub_like, loop = _module_with_functions()
        clone = clone_function(module, add_like, "add_clone")
        linear = CandidateRanker(exploration_threshold=3)
        indexed = IndexedCandidateSearcher(exploration_threshold=3)
        linear.add_functions(module.defined_functions())
        indexed.add_functions(module.defined_functions())
        for name in linear.known_functions():
            for limit in (None, 0, 1, 10):
                assert (_ranked_tuples(indexed, name, limit)
                        == _ranked_tuples(linear, name, limit))

    def test_container_protocol(self):
        module, *_ = _module_with_functions()
        indexed = IndexedCandidateSearcher()
        indexed.add_functions(module.defined_functions())
        assert len(indexed) == 3
        assert "add_like" in indexed
        assert indexed.known_functions() == ["add_like", "loop", "sub_like"]
        assert indexed.rank_candidates("nope") == []

    def test_invalid_threshold_rejected(self):
        with pytest.raises(ValueError):
            IndexedCandidateSearcher(exploration_threshold=0)

    def test_make_searcher_factory(self):
        assert isinstance(make_searcher("indexed"), IndexedCandidateSearcher)
        assert isinstance(make_searcher("linear"), CandidateRanker)
        with pytest.raises(ValueError):
            make_searcher("nope")


class TestOracleModeParity:
    """`limit=0` (the oracle's unrestricted ranking) parity between the
    indexed searcher and the linear ranker, including the
    `minimum_similarity < 0` full-scan path and score-tie ordering - the
    untested edges of the "exact parity" contract."""

    @settings(max_examples=100, deadline=None)
    @given(fingerprint_sets, st.sampled_from([0.0, -1.0, -0.5]))
    def test_unrestricted_ranking_parity(self, raw, minimum):
        linear = CandidateRanker(exploration_threshold=1,
                                 minimum_similarity=minimum)
        indexed = IndexedCandidateSearcher(exploration_threshold=1,
                                           minimum_similarity=minimum)
        for i, (opcodes, types) in enumerate(raw):
            fp = Fingerprint(f"f{i}", Counter(opcodes), Counter(types),
                             sum(opcodes.values()))
            linear.add_fingerprint(fp)
            indexed.add_fingerprint(fp)
        for i in range(len(raw)):
            assert (_ranked_tuples(indexed, f"f{i}", 0)
                    == _ranked_tuples(linear, f"f{i}", 0))

    def test_negative_minimum_returns_every_other_function(self):
        # the full-scan path: zero-similarity candidates (no shared opcode
        # or type feature, hence absent from every shared posting) must
        # still be returned, in the same order, with the same 0.0 scores
        disjoint = [Fingerprint("a", Counter("xy"), Counter({"w": 1}), 2),
                    Fingerprint("b", Counter("pq"), Counter({"v": 2}), 2),
                    Fingerprint("c", Counter("mn"), Counter({"u": 1}), 2)]
        linear = CandidateRanker(minimum_similarity=-1.0)
        indexed = IndexedCandidateSearcher(minimum_similarity=-1.0)
        for fp in disjoint:
            linear.add_fingerprint(fp)
            indexed.add_fingerprint(fp)
        for name in "abc":
            got = _ranked_tuples(indexed, name, 0)
            assert got == _ranked_tuples(linear, name, 0)
            assert len(got) == 2
            assert all(score == 0.0 for _, score, _ in got)
        # the default minimum (0.0) filters them out in both
        assert IndexedCandidateSearcher().rank_candidates("a") == []

    def test_score_ties_order_by_name_in_both(self):
        # four identical fingerprints: every candidate scores exactly the
        # same, so ordering is decided purely by the name tie-break
        linear = CandidateRanker(exploration_threshold=2)
        indexed = IndexedCandidateSearcher(exploration_threshold=2)
        for name in ("delta", "alpha", "charlie", "bravo"):
            fp = Fingerprint(name, Counter("aab"), Counter({"t": 3}), 3)
            linear.add_fingerprint(fp)
            indexed.add_fingerprint(fp)
        for limit in (0, 1, 2, None):
            got = _ranked_tuples(indexed, "charlie", limit)
            assert got == _ranked_tuples(linear, "charlie", limit)
        full = _ranked_tuples(indexed, "charlie", 0)
        assert [name for name, _, _ in full] == ["alpha", "bravo", "delta"]
        assert [position for _, _, position in full] == [1, 2, 3]


class TestPostingHygiene:
    """`remove_function` must prune posting sets that become empty: a long
    add/remove churn may not grow the inverted index without bound."""

    @staticmethod
    def _fingerprint(index):
        return Fingerprint(f"churn{index}",
                           Counter({f"op{index % 7}": 1 + index % 3,
                                    f"op{(index + 1) % 7}": 1}),
                           Counter({f"ty{index % 5}": 1}),
                           2 + index % 3)

    def test_churn_does_not_grow_postings_without_bound(self):
        searcher = IndexedCandidateSearcher(exploration_threshold=2)
        high_water = 0
        for index in range(500):
            searcher.add_fingerprint(self._fingerprint(index))
            if index >= 8:
                searcher.remove_function(f"churn{index - 8}")
            high_water = max(high_water, len(searcher._op_postings),
                             len(searcher._ty_postings))
        # 7 opcode features and 5 type features exist in total; the index
        # must never hold more posting sets than live features
        assert high_water <= 7 + 5
        assert len(searcher._op_postings) <= 7
        assert len(searcher._ty_postings) <= 5

    def test_postings_empty_after_removing_everything(self):
        searcher = IndexedCandidateSearcher()
        for index in range(20):
            searcher.add_fingerprint(self._fingerprint(index))
        for index in range(20):
            searcher.remove_function(f"churn{index}")
        assert searcher._op_postings == {}
        assert searcher._ty_postings == {}
        assert len(searcher) == 0

    def test_overwrite_reindexes_without_leaking_old_features(self):
        searcher = IndexedCandidateSearcher()
        searcher.add_fingerprint(
            Fingerprint("f", Counter({"add": 2}), Counter({"i32": 1}), 2))
        searcher.add_fingerprint(
            Fingerprint("f", Counter({"mul": 1}), Counter({"f64": 1}), 1))
        # the old feature's posting set was emptied by the overwrite
        add_id = searcher._op_feature_ids["add"]
        assert add_id not in searcher._op_postings
        mul_id = searcher._op_feature_ids["mul"]
        assert searcher._op_postings[mul_id] == {"f"}
