"""Tests for the instruction/label/entry equivalence relation."""

from repro.core import instructions_equivalent, labels_equivalent, types_equivalent
from repro.core.equivalence import entries_equivalent
from repro.core.linearizer import LinearEntry
from repro.ir import IRBuilder, Module
from repro.ir import types as ty
from repro.ir import values as vals
from repro.ir.basicblock import BasicBlock
from repro.ir.instructions import (Alloca, BinaryOperator, Call, GetElementPtr,
                                   ICmp, LandingPad, Load, Store)


def _args(t=ty.I32, n=2):
    return [vals.Argument(t, f"a{i}", i) for i in range(n)]


class TestTypeEquivalence:
    def test_identical_and_pointer_types(self):
        assert types_equivalent(ty.I32, ty.I32)
        assert types_equivalent(ty.pointer(ty.FLOAT), ty.pointer(ty.I64))
        assert types_equivalent(ty.I64, ty.DOUBLE)
        assert not types_equivalent(ty.I32, ty.I64)
        assert not types_equivalent(ty.FLOAT, ty.DOUBLE)


class TestInstructionEquivalence:
    def test_same_opcode_same_types_match(self):
        a1, b1 = _args()
        a2, b2 = _args()
        assert instructions_equivalent(BinaryOperator("add", a1, b1),
                                       BinaryOperator("add", a2, b2))

    def test_different_opcode_rejected(self):
        a, b = _args()
        assert not instructions_equivalent(BinaryOperator("add", a, b),
                                           BinaryOperator("sub", a, b))

    def test_operands_may_differ_in_value_but_not_type(self):
        a, b = _args()
        one = BinaryOperator("add", a, vals.const_int(1))
        two = BinaryOperator("add", b, vals.const_int(9))
        assert instructions_equivalent(one, two)
        wide = BinaryOperator("add", *_args(ty.I64))
        assert not instructions_equivalent(one, wide)

    def test_icmp_requires_same_predicate(self):
        a, b = _args()
        assert instructions_equivalent(ICmp("slt", a, b), ICmp("slt", a, b))
        assert not instructions_equivalent(ICmp("slt", a, b), ICmp("sgt", a, b))

    def test_result_type_must_be_bitcastable(self):
        p_int = Alloca(ty.I32)
        p_float = Alloca(ty.FLOAT)
        # loads of same width through different pointers are equivalent
        assert instructions_equivalent(Load(p_int), Load(p_float))
        p_double = Alloca(ty.DOUBLE)
        assert not instructions_equivalent(Load(p_int), Load(p_double))

    def test_alloca_requires_same_size(self):
        assert instructions_equivalent(Alloca(ty.I32), Alloca(ty.FLOAT))
        assert not instructions_equivalent(Alloca(ty.I32), Alloca(ty.I64))

    def test_store_width_must_match(self):
        slot32, slot64 = Alloca(ty.I32), Alloca(ty.I64)
        s32 = Store(vals.const_int(1, 32), slot32)
        s64 = Store(vals.const_int(1, 64), slot64)
        assert not instructions_equivalent(s32, s64)
        other32 = Store(vals.const_int(7, 32), Alloca(ty.I32))
        assert instructions_equivalent(s32, other32)

    def test_gep_requires_same_source_type(self):
        base = Alloca(ty.array(ty.I32, 4))
        gep1 = GetElementPtr(ty.array(ty.I32, 4), base, [vals.const_int(0, 64)],
                             ty.pointer(ty.I32))
        gep2 = GetElementPtr(ty.array(ty.I32, 4), base, [vals.const_int(1, 64)],
                             ty.pointer(ty.I32))
        gep3 = GetElementPtr(ty.array(ty.I64, 4), Alloca(ty.array(ty.I64, 4)),
                             [vals.const_int(0, 64)], ty.pointer(ty.I64))
        assert instructions_equivalent(gep1, gep2)
        assert not instructions_equivalent(gep1, gep3)

    def test_calls_require_identical_callee_function_types(self):
        module = Module()
        f_int = module.create_function("fi", ty.function_type(ty.I32, [ty.I32]),
                                       linkage="external")
        g_int = module.create_function("gi", ty.function_type(ty.I32, [ty.I32]),
                                       linkage="external")
        h_float = module.create_function("hf", ty.function_type(ty.I32, [ty.DOUBLE]),
                                         linkage="external")
        call1 = Call(f_int, [vals.const_int(1)])
        call2 = Call(g_int, [vals.const_int(2)])
        call3 = Call(h_float, [vals.const_float(1.0)])
        assert instructions_equivalent(call1, call2)
        assert not instructions_equivalent(call1, call3)

    def test_operand_count_must_match(self):
        from repro.ir.instructions import Return
        assert not instructions_equivalent(Return(), Return(vals.const_int(1)))
        assert instructions_equivalent(Return(vals.const_int(1)), Return(vals.const_int(2)))


class TestLabelEquivalence:
    def test_normal_labels_always_match(self):
        assert labels_equivalent(BasicBlock("a"), BasicBlock("b"))

    def test_landing_vs_normal_rejected(self):
        landing = BasicBlock("lp")
        landing.append(LandingPad())
        assert not labels_equivalent(landing, BasicBlock("n"))

    def test_landing_blocks_need_identical_pads(self):
        lp1 = BasicBlock("a")
        lp1.append(LandingPad(clauses=("cleanup",)))
        lp2 = BasicBlock("b")
        lp2.append(LandingPad(clauses=("cleanup",)))
        lp3 = BasicBlock("c")
        lp3.append(LandingPad(clauses=("catch i8*",)))
        assert labels_equivalent(lp1, lp2)
        assert not labels_equivalent(lp1, lp3)

    def test_entry_kinds_never_cross_match(self):
        block = BasicBlock("bb")
        a, b = _args()
        inst = BinaryOperator("add", a, b)
        label_entry = LinearEntry(LinearEntry.LABEL, block, block)
        inst_entry = LinearEntry(LinearEntry.INSTRUCTION, inst, block)
        assert not entries_equivalent(label_entry, inst_entry)
        assert entries_equivalent(label_entry, LinearEntry(LinearEntry.LABEL, BasicBlock("c"), block))
