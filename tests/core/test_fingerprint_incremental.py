"""Tests for incremental merged-function fingerprints.

``Fingerprint.of_merged`` composes the originals' fingerprints with the
alignment columns and the codegen-recorded delta; the engine uses it for
every committed merge instead of rescanning the merged body.  The contract
is *element-wise equality* with ``Fingerprint.of`` - checked here after
every commit across the tier-1 workload generators (synthetic families,
SPEC and MiBench models), plus decision parity with the rescan path and the
rescan fallback for self-referential merges.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (Fingerprint, FunctionMergingPass, MergeEngine,
                        MergeOptions, merge_functions)
from repro.core.fingerprint import FingerprintDelta
from repro.ir import IRBuilder, Module
from repro.ir import types as ty
from repro.ir import values as vals
from repro.workloads import FamilySpec, FunctionSpec, make_family
from repro.workloads.mibench import build_mibench_benchmark, mibench_benchmark_names
from repro.workloads.spec2006 import build_spec_benchmark, spec_benchmark_names


def build_module(seed=7, families=4, clones=2):
    module = Module(f"fp_{seed}")
    rng = random.Random(seed)
    for index in range(families):
        spec = FunctionSpec(
            f"fam{index}",
            num_blocks=2 + (index + seed) % 3,
            instructions_per_block=4 + ((index + seed) % 4) * 2,
            call_ratio=0.3, memory_ratio=0.2,
            returns_float=bool((index + seed) % 5 == 1),
            seed=100 + 13 * seed + index)
        make_family(module, spec,
                    FamilySpec(identical=1, structural=clones, partial=1), rng)
    return module


def decisions(report):
    return [(m.function1, m.function2, m.merged_name, m.rank_position, m.delta)
            for m in report.merges]


def assert_fingerprints_equal(fp: Fingerprint, fresh: Fingerprint):
    assert fp.opcode_freq == fresh.opcode_freq
    assert fp.type_freq == fresh.type_freq
    assert fp.size == fresh.size
    assert fp.opcode_total == fresh.opcode_total
    assert fp.type_total == fresh.type_total


# -- of_merged equals a rescan, on every commit of every workload -------------

class TestOfMergedEqualsRescan:
    """``verify_fingerprints=True`` makes the engine raise on the first
    divergence, so a clean run *is* the element-wise assertion."""

    @settings(max_examples=15, deadline=None)
    @given(st.integers(0, 10_000), st.integers(2, 6))
    def test_randomized_families(self, seed, families):
        report = FunctionMergingPass(
            exploration_threshold=2,
            verify_fingerprints=True).run(build_module(seed, families))
        stats = report.stage_stats["fingerprint"]
        assert stats.get("incremental", 0) + stats.get("rescans", 0) == \
            report.merge_count

    @pytest.mark.parametrize("workload", spec_benchmark_names()[:4])
    def test_spec_workloads(self, workload):
        module = build_spec_benchmark(workload, scale=0.02, seed=3).module
        FunctionMergingPass(exploration_threshold=2,
                            verify_fingerprints=True).run(module)

    @pytest.mark.parametrize("workload", mibench_benchmark_names()[:4])
    def test_mibench_workloads(self, workload):
        module = build_mibench_benchmark(workload, scale=0.02, seed=3).module
        FunctionMergingPass(exploration_threshold=2,
                            verify_fingerprints=True).run(module)

    def test_oracle_mode(self):
        FunctionMergingPass(oracle=True,
                            verify_fingerprints=True).run(build_module(3))

    def test_parallel_planner(self):
        FunctionMergingPass(exploration_threshold=2, jobs=4, batch_size=16,
                            verify_fingerprints=True).run(build_module(5, 6))


def test_of_merged_matches_rescan_for_direct_merge():
    """Unit-level check without the engine: merge one pair directly."""
    module = Module("direct")
    rng = random.Random(1)
    spec = FunctionSpec("f", num_blocks=3, instructions_per_block=6,
                        call_ratio=0.2, memory_ratio=0.3, seed=11)
    make_family(module, spec, FamilySpec(structural=1), rng)
    functions = [f for f in module.defined_functions()]
    f1 = next(f for f in functions if f.name == "f")
    f2 = next(f for f in functions if f.name == "f_struct0")
    fp1, fp2 = Fingerprint.of(f1), Fingerprint.of(f2)
    result = merge_functions(f1, f2, MergeOptions())
    fp = Fingerprint.of_merged(result.alignment, fp1, fp2,
                               result.fingerprint_delta,
                               name=result.merged.name)
    assert_fingerprints_equal(fp, Fingerprint.of(result.merged))
    assert fp.function_name == result.merged.name


def test_delta_records_codegen_extras():
    # two near-identical chains with one differing constant operand force a
    # select; the delta must carry it (plus its i1 func_id operand)
    module = Module("delta")

    def chain(name, const):
        fn = module.create_function(name, ty.function_type(ty.I32, [ty.I32]))
        builder = IRBuilder(fn.append_block("entry"))
        value = fn.arguments[0]
        value = builder.binary("add", value, vals.const_int(const))
        value = builder.binary("mul", value, vals.const_int(3))
        builder.ret(value)
        return fn

    f1, f2 = chain("a", 1), chain("b", 2)
    result = merge_functions(f1, f2, MergeOptions())
    delta = result.fingerprint_delta
    assert isinstance(delta, FingerprintDelta)
    assert delta.opcode_freq.get("select", 0) >= 1
    assert delta.size >= 1
    fp = Fingerprint.of_merged(result.alignment, Fingerprint.of(f1),
                               Fingerprint.of(f2), delta)
    assert_fingerprints_equal(fp, Fingerprint.of(result.merged))


# -- parity and the rescan fallback -------------------------------------------

class TestEngineIntegration:
    @settings(max_examples=10, deadline=None)
    @given(st.integers(0, 10_000))
    def test_decisions_identical_with_and_without_incremental(self, seed):
        incremental = FunctionMergingPass(exploration_threshold=2).run(
            build_module(seed))
        rescan = FunctionMergingPass(exploration_threshold=2,
                                     incremental_fingerprints=False).run(
            build_module(seed))
        assert decisions(incremental) == decisions(rescan)

    def test_incremental_is_the_default_and_used(self):
        report = FunctionMergingPass(exploration_threshold=2).run(
            build_module(3))
        assert report.merge_count >= 1
        stats = report.stage_stats["fingerprint"]
        assert stats.get("incremental", 0) >= 1

    def test_rescan_fallback_when_merged_calls_its_own_original(self):
        # both originals directly call original ``a``, so the merged body
        # keeps a *direct* call to ``a``; committing the merge deletes ``a``
        # and redirects that call site inside the merged body itself - the
        # alignment no longer describes the body and the engine must rescan
        module = Module("selfcall")

        def chain(name, callee=None):
            fn = module.create_function(name,
                                        ty.function_type(ty.I32, [ty.I32]))
            builder = IRBuilder(fn.append_block("entry"))
            value = builder.binary("add", fn.arguments[0], vals.const_int(1))
            value = builder.call(callee if callee is not None else fn, [value])
            value = builder.binary("mul", value, vals.const_int(3))
            builder.ret(value)
            return fn

        a = chain("a")          # self-recursive
        chain("b", callee=a)    # calls a too: the call columns match
        engine = MergeEngine(exploration_threshold=1, verify_fingerprints=True)
        report = engine.run(module)
        assert report.merge_count == 1
        assert report.merges[0].merged_name in \
            [f.name for f in module.defined_functions()]
        stats = report.stage_stats["fingerprint"]
        assert stats.get("rescans", 0) >= 1

    def test_live_fingerprints_refresh_after_caller_rewrites(self):
        # commit 1 merges the leaves and rewrites the callers' call sites
        # (wider argument lists, func_id constants); commit 2 then merges
        # the callers, whose of_merged must compose *refreshed* live
        # fingerprints - verify_fingerprints throws on a stale one
        module = Module("callers")
        rng = random.Random(2)
        callee_spec = FunctionSpec("leaf", num_blocks=2,
                                   instructions_per_block=5, seed=21)
        make_family(module, callee_spec, FamilySpec(structural=1), rng)
        leaf = module.get_function("leaf")

        def caller(name):
            fn = module.create_function(name,
                                        ty.function_type(ty.I32, [ty.I32]))
            builder = IRBuilder(fn.append_block("entry"))
            value = builder.binary("add", fn.arguments[0], vals.const_int(1))
            args = [vals.undef(a.type) for a in leaf.arguments]
            call = builder.call(leaf, args)
            keep = (call if call.type == ty.I32 else value)
            builder.ret(builder.binary("xor", value, keep))
            return fn

        # names sort after "leaf*": the leaves merge first, rewriting these
        caller("z1")
        caller("z2")
        report = FunctionMergingPass(exploration_threshold=3,
                                     verify_fingerprints=True).run(module)
        merged_pairs = {(m.function1, m.function2) for m in report.merges}
        assert ("leaf", "leaf_struct0") in merged_pairs
        assert ("z1", "z2") in merged_pairs
        stats = report.stage_stats["fingerprint"]
        assert stats.get("live_refreshed", 0) >= 1
