"""Property tests for the native (C) alignment kernels and the wavefront.

The contract mirrors :mod:`tests.core.test_align_numpy`: *bit-identical
output*.  For every pair of sequences, every scoring scheme, and both the
full and the banded variant (certified or fallen back), ``nw-native``,
``nw-banded-native`` and ``nw-wavefront-numpy`` must return the same score
and the same entry list - same tie-breaking included - as the pure-Python
:func:`needleman_wunsch`.  The extension-absent behaviour (a clear error
naming the build requirements for explicit requests, a warned downgrade to
the NumPy or pure tier for the environment knob) is tested by simulating a
failed build, mirroring the NumPy-absent leg.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import FunctionMergingPass, MergeEngine, align_np
from repro.core import native as native_mod
from repro.core.align_np import (needleman_wunsch_wavefront_numpy,
                                 needleman_wunsch_wavefront_numpy_keyed,
                                 numpy_available)
from repro.core.alignment import (ALGORITHMS, ScoringScheme, align,
                                  needleman_wunsch, needleman_wunsch_keyed,
                                  ops_string, solve_keyed_alignment)
from repro.core.engine import ProcessExecutor
from repro.core.engine.stages import AlignmentStage, resolve_alignment_kernel
from repro.core.native import (native_available,
                               needleman_wunsch_banded_native,
                               needleman_wunsch_banded_native_keyed,
                               needleman_wunsch_native,
                               needleman_wunsch_native_keyed,
                               solve_keyed_alignment_native)
from repro.ir import Module, verify_or_raise
from repro.workloads import FamilySpec, FunctionSpec, make_family

requires_native = pytest.mark.skipif(
    not native_available(), reason="native extension not buildable here")
requires_numpy = pytest.mark.skipif(not numpy_available(),
                                    reason="NumPy not installed")

short_text = st.text(alphabet="ABCD", max_size=14)
scorings = st.builds(ScoringScheme,
                     match=st.integers(1, 3),
                     mismatch=st.integers(-3, 0),
                     gap=st.integers(-3, 0))
band_margins = st.one_of(st.none(), st.integers(min_value=0, max_value=6))


def entry_pairs(result):
    return [(e.left, e.right) for e in result.entries]


def assert_same(got, want):
    assert got.score == want.score
    assert entry_pairs(got) == entry_pairs(want)


def build_module(seed=7, families=4, clones=2):
    module = Module(f"native_{seed}")
    rng = random.Random(seed)
    for index in range(families):
        spec = FunctionSpec(
            f"fam{index}",
            num_blocks=2 + (index + seed) % 3,
            instructions_per_block=4 + ((index + seed) % 4) * 2,
            call_ratio=0.3, memory_ratio=0.2,
            returns_float=bool((index + seed) % 5 == 1),
            seed=100 + 13 * seed + index)
        make_family(module, spec,
                    FamilySpec(identical=1, structural=clones, partial=1), rng)
    return module


def decisions(report):
    return [(m.function1, m.function2, m.merged_name, m.rank_position, m.delta)
            for m in report.merges]


#: The seed engine configuration (the pre-scheduler implementation).
SEED_CONFIG = dict(searcher="linear", keyed_alignment=False,
                   jobs=1, batch_size=1, incremental_callgraph=False)


# -- exact parity with the pure-Python kernels --------------------------------

@requires_native
@settings(max_examples=100, deadline=None)
@given(short_text, short_text, scorings)
def test_native_full_matches_nw_entries_and_score(seq1, seq2, scoring):
    want = needleman_wunsch(seq1, seq2, scoring=scoring)
    assert_same(needleman_wunsch_native(seq1, seq2, scoring=scoring), want)


@requires_native
@settings(max_examples=100, deadline=None)
@given(short_text, short_text, scorings)
def test_native_keyed_matches_keyed_kernel(seq1, seq2, scoring):
    keys1 = [ord(c) for c in seq1]
    keys2 = [ord(c) for c in seq2]
    want = needleman_wunsch_keyed(seq1, seq2, keys1, keys2, scoring)
    got = needleman_wunsch_native_keyed(seq1, seq2, keys1, keys2, scoring)
    assert_same(got, want)
    assert_same(got, needleman_wunsch(seq1, seq2, scoring=scoring))


@requires_native
@settings(max_examples=100, deadline=None)
@given(short_text, short_text, scorings, band_margins)
def test_native_banded_matches_nw_incl_fallback(seq1, seq2, scoring, margin):
    """Tiny margins force the certificate to fail on dissimilar pairs, so
    this exercises both the certified band and the full-DP fallback."""
    want = needleman_wunsch(seq1, seq2, scoring=scoring)
    keys1 = [ord(c) for c in seq1]
    keys2 = [ord(c) for c in seq2]
    assert_same(needleman_wunsch_banded_native_keyed(
        seq1, seq2, keys1, keys2, scoring, band_margin=margin), want)
    assert_same(needleman_wunsch_banded_native(
        seq1, seq2, scoring=scoring, band_margin=margin), want)


@requires_numpy
@settings(max_examples=100, deadline=None)
@given(short_text, short_text, scorings)
def test_wavefront_matches_nw_entries_and_score(seq1, seq2, scoring):
    want = needleman_wunsch(seq1, seq2, scoring=scoring)
    keys1 = [ord(c) for c in seq1]
    keys2 = [ord(c) for c in seq2]
    assert_same(needleman_wunsch_wavefront_numpy(seq1, seq2, scoring=scoring),
                want)
    assert_same(needleman_wunsch_wavefront_numpy_keyed(
        seq1, seq2, keys1, keys2, scoring), want)


@requires_native
@settings(max_examples=60, deadline=None)
@given(st.lists(st.integers(0, 3), max_size=12),
       st.lists(st.integers(0, 3), max_size=12), scorings,
       st.booleans())
def test_solve_keyed_native_matches_pure_solver(keys1, keys2, scoring, banded):
    want = solve_keyed_alignment(keys1, keys2, scoring,
                                 "nw-banded" if banded else "needleman-wunsch")
    got = solve_keyed_alignment_native(keys1, keys2, scoring, banded=banded)
    assert got == want


@requires_native
@pytest.mark.parametrize("seq1,seq2", [("", ""), ("", "ABC"), ("ABC", ""),
                                       ("A", "A"), ("A", "B"),
                                       ("AAAA", "AAAA")])
def test_native_degenerate_sequences(seq1, seq2):
    want = needleman_wunsch(seq1, seq2)
    keys1, keys2 = [ord(c) for c in seq1], [ord(c) for c in seq2]
    assert_same(needleman_wunsch_native(seq1, seq2), want)
    assert_same(needleman_wunsch_native_keyed(seq1, seq2, keys1, keys2), want)
    assert_same(needleman_wunsch_banded_native(seq1, seq2), want)
    assert_same(needleman_wunsch_banded_native_keyed(seq1, seq2, keys1, keys2),
                want)
    if numpy_available():
        assert_same(needleman_wunsch_wavefront_numpy(seq1, seq2), want)
        assert_same(needleman_wunsch_wavefront_numpy_keyed(
            seq1, seq2, keys1, keys2), want)


@requires_native
def test_never_equivalent_keys_never_match():
    # the linearizer's never-equivalent marker decodes to keys that differ
    # everywhere; the native kernel must score them as all-mismatch, the
    # same as the pure kernel does
    from repro.core import decode_canonical_keys
    k1, k2 = decode_canonical_keys([b"!", b"(i1;)"], [b"!", b"(i1;)"])
    want = needleman_wunsch_keyed("AB", "AB", k1, k2)
    assert_same(needleman_wunsch_native_keyed("AB", "AB", k1, k2), want)
    assert solve_keyed_alignment_native(k1, k2, ScoringScheme()) \
        == (ops_string(want.entries), want.score)


@requires_native
def test_huge_scores_fall_back_to_pure_and_still_match():
    # weights too large for the int64 guard: the native wrappers must
    # degrade to the pure kernel, not overflow
    scoring = ScoringScheme(match=2**61, mismatch=-2**61, gap=-2**61)
    want = needleman_wunsch("ABCA", "ABDA", scoring=scoring)
    keys1, keys2 = [ord(c) for c in "ABCA"], [ord(c) for c in "ABDA"]
    assert_same(needleman_wunsch_native_keyed("ABCA", "ABDA", keys1, keys2,
                                              scoring), want)
    assert solve_keyed_alignment_native(keys1, keys2, scoring) \
        == (ops_string(want.entries), want.score)
    # keys outside int64 take the same fallback
    big = [2**70, 2**70 + 1]
    want_big = needleman_wunsch_keyed("AB", "AB", big, big)
    assert_same(needleman_wunsch_native_keyed("AB", "AB", big, big), want_big)


@requires_native
def test_native_banded_certifies_near_identical_pair_without_fallback():
    native = native_mod.require_native("nw-banded-native")
    keys1 = list(range(300))
    keys2 = list(range(300))
    keys2[150] = 99999
    from repro.core.alignment import derive_band_margin
    shape = native.solve_banded_keyed(keys1, keys2, 1, -1, -1,
                                      derive_band_margin(keys1, keys2))
    assert shape is not None  # narrow band, certificate holds
    want = needleman_wunsch_keyed(keys1, keys2, keys1, keys2)
    assert shape == (ops_string(want.entries), want.score)


@requires_native
def test_front_door_dispatches_native_algorithms():
    want = needleman_wunsch("ABCA", "ABDA")
    assert_same(align("ABCA", "ABDA", algorithm="nw-native"), want)
    assert_same(align("ABCA", "ABDA", algorithm="nw-banded-native"), want)
    assert "nw-native" in ALGORITHMS and "nw-banded-native" in ALGORITHMS
    if numpy_available():
        assert_same(align("ABCA", "ABDA", algorithm="nw-wavefront-numpy"),
                    want)
        assert "nw-wavefront-numpy" in ALGORITHMS


@requires_native
def test_scores_are_plain_ints():
    result = needleman_wunsch_native_keyed("ABC", "ABD", [1, 2, 3], [1, 2, 4])
    assert type(result.score) is int
    banded = needleman_wunsch_banded_native_keyed("ABC", "ABD",
                                                  [1, 2, 3], [1, 2, 4])
    assert type(banded.score) is int
    ops, score = solve_keyed_alignment_native([1, 2, 3], [1, 2, 4])
    assert type(ops) is str and type(score) is int


# -- kernel resolution: explicit / env / auto ---------------------------------

@requires_native
def test_stage_kernel_argument_selects_native():
    assert AlignmentStage(kernel="nw-native").algorithm == "nw-native"
    assert AlignmentStage(
        kernel="nw-banded-native").algorithm == "nw-banded-native"


@requires_native
def test_env_knob_selects_native_kernel(monkeypatch):
    monkeypatch.setenv("REPRO_ALIGN_KERNEL", "nw-native")
    assert AlignmentStage().algorithm == "nw-native"


@requires_native
def test_auto_resolves_to_native_when_available():
    assert resolve_alignment_kernel("auto", "needleman-wunsch") == "nw-native"


# -- engine parity across executors ------------------------------------------

@requires_native
class TestNativeEngineParity:
    """The native-kernel engine reproduces the seed engine bit for bit."""

    @settings(max_examples=3, deadline=None)
    @given(st.integers(0, 10_000))
    def test_executor_jobs_parity_on_randomized_modules(self, seed):
        reference = FunctionMergingPass(
            exploration_threshold=2, **SEED_CONFIG).run(build_module(seed))
        for executor, jobs in (("serial", 1), ("thread", 2), ("process", 2)):
            module = build_module(seed)
            report = FunctionMergingPass(
                exploration_threshold=2, alignment_kernel="nw-native",
                executor=executor, jobs=jobs).run(module)
            assert decisions(report) == decisions(reference), (executor, jobs)
            verify_or_raise(module)

    def test_banded_native_parity(self):
        reference = FunctionMergingPass(
            exploration_threshold=2, **SEED_CONFIG).run(build_module(11))
        report = FunctionMergingPass(
            exploration_threshold=2,
            alignment_kernel="nw-banded-native").run(build_module(11))
        assert decisions(report) == decisions(reference)

    @requires_numpy
    def test_wavefront_parity(self):
        reference = FunctionMergingPass(
            exploration_threshold=2, **SEED_CONFIG).run(build_module(5))
        report = FunctionMergingPass(
            exploration_threshold=2,
            alignment_kernel="nw-wavefront-numpy").run(build_module(5))
        assert decisions(report) == decisions(reference)

    def test_native_worker_leg(self):
        # workers pinned to the native solver (auto would pick it too when
        # the build cache is warm; pinning makes the leg deterministic)
        reference = FunctionMergingPass(
            exploration_threshold=2, **SEED_CONFIG).run(build_module(9))
        engine = MergeEngine(exploration_threshold=2, batch_size=8)
        executor = ProcessExecutor(2, kernel="native")
        scheduler = engine.make_scheduler(executor=executor)
        module = build_module(9)
        try:
            report = engine.run(module, scheduler=scheduler)
        finally:
            scheduler.close()
        assert decisions(report) == decisions(reference)
        assert report.scheduler_stats["offload_tasks"] > 0


# -- behaviour without the extension ------------------------------------------

class TestWithoutNative:
    """Simulate an environment where the extension cannot be built."""

    @pytest.fixture(autouse=True)
    def no_native(self, monkeypatch):
        monkeypatch.setattr(native_mod, "_native", False)
        monkeypatch.setattr(native_mod, "_load_error", "simulated: no C "
                            "compiler in this environment")
        # isolate from an ambient REPRO_ALIGN_KERNEL (the CI native leg
        # exports one); env-sourced requests downgrade instead of raising
        monkeypatch.delenv("REPRO_ALIGN_KERNEL", raising=False)

    def test_kernel_call_raises_naming_the_build(self):
        with pytest.raises(ImportError, match="compil"):
            needleman_wunsch_native_keyed("AB", "AB", [1, 2], [1, 2])
        with pytest.raises(ImportError, match="compil"):
            align("AB", "AB", algorithm="nw-native")

    def test_explicit_stage_request_raises(self):
        with pytest.raises(ImportError, match="compil"):
            AlignmentStage(kernel="nw-native")
        with pytest.raises(ImportError, match="compil"):
            AlignmentStage(algorithm="nw-banded-native")

    def test_env_request_warns_and_downgrades(self, monkeypatch):
        monkeypatch.setenv("REPRO_ALIGN_KERNEL", "nw-native")
        with pytest.warns(RuntimeWarning, match="falling back"):
            stage = AlignmentStage()
        # the downgrade lands on the NumPy twin when available, pure else
        want = "nw-numpy" if numpy_available() else "needleman-wunsch"
        assert stage.algorithm == want
        monkeypatch.setenv("REPRO_ALIGN_KERNEL", "nw-banded-native")
        want = "nw-banded-numpy" if numpy_available() else "nw-banded"
        with pytest.warns(RuntimeWarning, match="falling back"):
            assert AlignmentStage().algorithm == want

    def test_auto_skips_the_native_tier(self):
        want = "nw-numpy" if numpy_available() else "needleman-wunsch"
        assert resolve_alignment_kernel("auto", "needleman-wunsch") == want

    def test_engine_still_runs_and_decisions_match(self):
        reference = FunctionMergingPass(
            exploration_threshold=2, **SEED_CONFIG).run(build_module(3))
        report = FunctionMergingPass(
            exploration_threshold=2).run(build_module(3))
        assert decisions(report) == decisions(reference)

    def test_env_disable_knob_reports_unavailable(self, monkeypatch):
        # REPRO_NATIVE=0 must read as "not available" even where a compiler
        # exists; resolution then skips the native tier (monkeypatch restores
        # the probe state afterwards)
        monkeypatch.setattr(native_mod, "_native", None)  # force re-probe
        monkeypatch.setenv(native_mod.NATIVE_ENV, "0")
        assert not native_mod.native_available()
