"""Unit tests for the sequence alignment algorithms (on plain sequences)."""

import pytest

from repro.core import ScoringScheme, align, hirschberg, needleman_wunsch
from repro.core.alignment import AlignedEntry, alignment_score


def left_string(entries):
    return "".join(e.left for e in entries if e.left is not None)


def right_string(entries):
    return "".join(e.right for e in entries if e.right is not None)


class TestNeedlemanWunsch:
    def test_identical_sequences_fully_match(self):
        result = needleman_wunsch("GATTACA", "GATTACA")
        assert result.match_count == 7
        assert result.gap_count == 0
        assert result.score == 7

    def test_empty_sequences(self):
        assert needleman_wunsch("", "").entries == []
        only_left = needleman_wunsch("AB", "")
        assert all(e.is_left_only for e in only_left.entries)
        only_right = needleman_wunsch("", "AB")
        assert all(e.is_right_only for e in only_right.entries)

    def test_classic_example(self):
        result = needleman_wunsch("GCATGCG", "GATTACA")
        # optimal score for match=1, mismatch=-1, gap=-1 is 0
        assert result.score == 0

    def test_preserves_input_subsequences(self):
        seq1, seq2 = "ABCDEF", "ABXDEF"
        entries = needleman_wunsch(seq1, seq2).entries
        assert left_string(entries) == seq1
        assert right_string(entries) == seq2

    def test_insertion_detected_as_gap(self):
        entries = needleman_wunsch("ABCDEF", "ABCXDEF").entries
        gaps = [e for e in entries if not e.is_match]
        assert len(gaps) == 1
        assert gaps[0].is_right_only and gaps[0].right == "X"

    def test_mismatches_expanded_to_gap_pairs(self):
        entries = needleman_wunsch("AXB", "AYB").entries
        assert all(e.is_match or e.left is None or e.right is None for e in entries)
        kinds = [(e.left, e.right) for e in entries if not e.is_match]
        assert (None, "Y") in kinds and ("X", None) in kinds

    def test_match_ratio(self):
        result = needleman_wunsch("AAAA", "AABA")
        assert 0.0 < result.match_ratio() <= 1.0
        assert needleman_wunsch("", "").match_ratio() == 0.0

    def test_custom_equivalence_predicate(self):
        result = needleman_wunsch("abc", "ABC",
                                  equivalent=lambda a, b: a.lower() == b.lower())
        assert result.match_count == 3

    def test_scoring_scheme_changes_alignment(self):
        # with a huge gap penalty, mismatching diagonals are preferred over gaps
        harsh_gaps = ScoringScheme(match=2, mismatch=-1, gap=-10)
        result = needleman_wunsch("ABCD", "AXCD", scoring=harsh_gaps)
        assert result.score == 3 * 2 - 1

    def test_invalid_scoring_scheme(self):
        with pytest.raises(ValueError):
            ScoringScheme(match=0)


class TestHirschberg:
    def test_same_score_as_needleman_wunsch(self):
        pairs = [("GATTACA", "GCATGCG"), ("ABCDEF", "ABDF"), ("", "ABC"),
                 ("AAAA", "AAAA"), ("ABCABC", "CBACBA")]
        for seq1, seq2 in pairs:
            nw = needleman_wunsch(seq1, seq2)
            hb = hirschberg(seq1, seq2)
            assert hb.score == nw.score, (seq1, seq2)

    def test_preserves_subsequences(self):
        seq1, seq2 = "KITTEN", "SITTING"
        entries = hirschberg(seq1, seq2).entries
        assert left_string(entries) == seq1
        assert right_string(entries) == seq2

    def test_identical_sequences(self):
        result = hirschberg("MERGE", "MERGE")
        assert result.match_count == 5


class TestAlignFrontDoor:
    def test_algorithm_selection(self):
        assert align("AB", "AB", algorithm="nw").match_count == 2
        assert align("AB", "AB", algorithm="hirschberg").match_count == 2
        with pytest.raises(ValueError):
            align("AB", "AB", algorithm="smith-waterman-nonexistent")

    def test_alignment_score_helper(self):
        entries = [AlignedEntry("A", "A"), AlignedEntry("B", None), AlignedEntry(None, "C")]
        assert alignment_score(entries) == 1 - 1 - 1
