"""Tests for the FunctionMergingPass exploration framework (Figure 7)."""

import random

import pytest

from repro.core import FunctionMergingPass, MergeOptions, make_hotness_filter
from repro.core.pass_ import STAGES
from repro.interp.profile import FunctionProfile
from repro.ir import Module, verify_or_raise
from repro.targets import ARM_THUMB, X86_64
from repro.workloads import clone_function, mutate_constants, mutate_opcodes

from tests.helpers import make_binary_chain_function, make_caller, run_function


def _module_with_families(num_families=2, clones_per_family=2, seed=5):
    """A module with a few families of similar functions plus callers."""
    module = Module("families")
    rng = random.Random(seed)
    functions = []
    for family in range(num_families):
        opcodes = [["add", "mul", "add"], ["sub", "xor", "add", "mul"]][family % 2]
        base = make_binary_chain_function(module, f"base{family}", opcodes,
                                          constant=family + 2)
        functions.append(base)
        for index in range(clones_per_family):
            sibling = clone_function(module, base, f"base{family}_v{index}")
            mutate_constants(sibling, rng, 0.4)
            if index % 2:
                mutate_opcodes(sibling, rng, 0.2)
            functions.append(sibling)
    make_caller(module, "main", functions)
    return module, functions


class TestPassBehaviour:
    def test_merges_found_and_module_stays_valid(self):
        module, functions = _module_with_families()
        report = FunctionMergingPass(exploration_threshold=1).run(module)
        assert report.merge_count >= 2
        verify_or_raise(module)

    def test_semantics_preserved_across_whole_pass(self):
        module, _ = _module_with_families()
        reference, _ = _module_with_families()
        report = FunctionMergingPass(exploration_threshold=2).run(module)
        assert report.merge_count >= 1
        for n in (0, 3, 11):
            assert (run_function(module, "main", [n])
                    == run_function(reference, "main", [n]))

    def test_feedback_loop_merges_merged_functions(self):
        # three identical siblings: after the first merge, the merged function
        # goes back onto the worklist and absorbs the remaining sibling too
        module = Module("feedback")
        base = make_binary_chain_function(module, "base",
                                          ["add", "mul", "add", "xor", "sub"])
        siblings = [clone_function(module, base, f"twin{i}") for i in range(2)]
        make_caller(module, "main", [base] + siblings)
        report = FunctionMergingPass(exploration_threshold=2).run(module)
        assert report.merge_count >= 2
        merged_names = [m.merged_name for m in report.merges]
        assert any(m.function1 in merged_names or m.function2 in merged_names
                   for m in report.merges[1:])
        verify_or_raise(module)

    def test_stage_times_recorded(self):
        module, _ = _module_with_families()
        report = FunctionMergingPass().run(module)
        assert set(report.stage_times) == set(STAGES)
        assert report.stage_times["alignment"] > 0.0
        assert report.total_time > 0.0

    def test_rank_positions_recorded(self):
        module, _ = _module_with_families()
        report = FunctionMergingPass(exploration_threshold=5).run(module)
        assert report.rank_positions
        assert all(1 <= p <= 5 for p in report.rank_positions)

    def test_summary_is_printable(self):
        module, _ = _module_with_families()
        report = FunctionMergingPass().run(module)
        text = report.summary()
        assert "merge" in text
        assert "alignment" in text

    def test_oracle_not_worse_than_greedy(self):
        module_greedy, _ = _module_with_families()
        module_oracle, _ = _module_with_families()
        greedy = FunctionMergingPass(exploration_threshold=1).run(module_greedy)
        oracle = FunctionMergingPass(oracle=True).run(module_oracle)
        total_greedy = sum(m.delta for m in greedy.merges)
        total_oracle = sum(m.delta for m in oracle.merges)
        assert oracle.merge_count >= greedy.merge_count or total_oracle >= total_greedy

    def test_higher_threshold_never_finds_fewer_merges(self):
        module_t1, _ = _module_with_families(num_families=3)
        module_t5, _ = _module_with_families(num_families=3)
        t1 = FunctionMergingPass(exploration_threshold=1).run(module_t1)
        t5 = FunctionMergingPass(exploration_threshold=5).run(module_t5)
        assert t5.merge_count >= t1.merge_count

    def test_arm_target_also_works(self):
        module, _ = _module_with_families()
        report = FunctionMergingPass(target=ARM_THUMB).run(module)
        assert report.merge_count >= 1
        verify_or_raise(module)

    def test_minimum_function_size_filter(self):
        module, _ = _module_with_families()
        report = FunctionMergingPass(minimum_function_size=10_000).run(module)
        assert report.merge_count == 0
        assert report.functions_considered == 0

    def test_phi_demotion_precondition_applied(self):
        from repro.ir import IRBuilder
        from repro.ir import types as ty
        from repro.ir import values as vals
        module = Module()
        function = module.create_function("withphi", ty.function_type(ty.I32, [ty.I32]),
                                          linkage="external")
        entry = function.append_block("entry")
        left = function.append_block("left")
        right = function.append_block("right")
        join = function.append_block("join")
        builder = IRBuilder(entry)
        cond = builder.icmp("sgt", function.arguments[0], vals.const_int(0))
        builder.cond_br(cond, left, right)
        IRBuilder(left).br(join)
        IRBuilder(right).br(join)
        join_builder = IRBuilder(join)
        phi = join_builder.phi(ty.I32)
        phi.add_incoming(vals.const_int(1), left)
        phi.add_incoming(vals.const_int(2), right)
        join_builder.ret(phi)
        FunctionMergingPass().run(module)
        assert not any(i.is_phi for i in function.instructions())
        verify_or_raise(module)


class TestHotFunctionExclusion:
    def test_hot_functions_skipped(self):
        module, functions = _module_with_families(num_families=1, clones_per_family=1)
        # mark both family members as hot
        for function in functions:
            function.profile = FunctionProfile(function.name, call_count=1000,
                                               dynamic_instructions=100000,
                                               relative_weight=0.4)
        pass_ = FunctionMergingPass(hot_function_filter=make_hotness_filter(0.01))
        report = pass_.run(module)
        assert report.excluded_hot_functions == len(functions)
        assert report.merge_count == 0

    def test_cold_functions_still_merge(self):
        module, functions = _module_with_families(num_families=1, clones_per_family=1)
        for function in functions:
            function.profile = FunctionProfile(function.name, call_count=1,
                                               dynamic_instructions=10,
                                               relative_weight=0.0001)
        report = FunctionMergingPass(
            hot_function_filter=make_hotness_filter(0.01)).run(module)
        assert report.excluded_hot_functions == 0
        assert report.merge_count >= 1

    def test_filter_ignores_functions_without_profiles(self):
        hotness = make_hotness_filter(0.01)
        module, functions = _module_with_families(num_families=1, clones_per_family=1)
        assert not hotness(functions[0])
