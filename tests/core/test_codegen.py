"""Structural tests for the merged-function code generator."""

import pytest

from repro.core import (MergeOptions, align, linearize, merge_functions,
                        merge_parameter_lists, merge_return_types)
from repro.core.codegen import convert_value
from repro.core.equivalence import entries_equivalent
from repro.ir import IRBuilder, Module, verify_or_raise
from repro.ir import types as ty
from repro.ir import values as vals
from repro.workloads import clone_function

from tests.helpers import make_binary_chain_function


def _pair(module=None, opcodes1=("add",), opcodes2=("sub",)):
    module = module or Module()
    f1 = make_binary_chain_function(module, "first", list(opcodes1))
    f2 = make_binary_chain_function(module, "second", list(opcodes2))
    return module, f1, f2


class TestParameterMerging:
    def _alignment(self, f1, f2):
        return align(linearize(f1), linearize(f2), entries_equivalent)

    def test_identical_signatures_reuse_all_parameters(self):
        module, f1, f2 = _pair()
        types, names, bind1, bind2 = merge_parameter_lists(
            f1, f2, self._alignment(f1, f2), MergeOptions())
        assert types[0] == ty.I1 and names[0] == "func_id"
        assert len(types) == 1 + len(f1.arguments)
        assert set(bind2.values()) <= set(bind1.values())

    def test_disjoint_types_are_appended(self):
        module = Module()
        f1 = module.create_function("a", ty.function_type(ty.I32, [ty.I32]))
        IRBuilder(f1.append_block("entry")).ret(f1.arguments[0])
        f2 = module.create_function("b", ty.function_type(ty.DOUBLE, [ty.DOUBLE]))
        builder = IRBuilder(f2.append_block("entry"))
        builder.ret(f2.arguments[0])
        types, _, bind1, bind2 = merge_parameter_lists(
            f1, f2, self._alignment(f1, f2), MergeOptions())
        assert types == [ty.I1, ty.I32, ty.DOUBLE]
        assert bind1[0] == 1 and bind2[0] == 2

    def test_reuse_disabled_appends_everything(self):
        module, f1, f2 = _pair()
        types, *_ = merge_parameter_lists(
            f1, f2, self._alignment(f1, f2), MergeOptions(reuse_parameters=False))
        assert len(types) == 1 + len(f1.arguments) + len(f2.arguments)

    def test_each_merged_parameter_bound_at_most_once(self):
        module = Module()
        f1 = module.create_function("a", ty.function_type(ty.I32, [ty.I32, ty.I32]))
        builder = IRBuilder(f1.append_block("entry"))
        builder.ret(builder.add(f1.arguments[0], f1.arguments[1]))
        f2 = module.create_function("b", ty.function_type(ty.I32, [ty.I32, ty.I32]))
        builder = IRBuilder(f2.append_block("entry"))
        builder.ret(builder.sub(f2.arguments[0], f2.arguments[1]))
        _, _, bind1, bind2 = merge_parameter_lists(
            f1, f2, self._alignment(f1, f2), MergeOptions())
        assert len(set(bind2.values())) == len(bind2)

    def test_return_type_merging_rules(self):
        module = Module()

        def fn(name, ret):
            f = module.create_function(name, ty.function_type(ret, []))
            b = IRBuilder(f.append_block("entry"))
            if ret.is_void:
                b.ret_void()
            elif ret.is_float:
                b.ret(vals.ConstantFloat(ret, 0.0))
            else:
                b.ret(vals.ConstantInt(ret, 0))
            return f

        assert merge_return_types(fn("a", ty.I32), fn("b", ty.I32)) == ty.I32
        assert merge_return_types(fn("c", ty.VOID), fn("d", ty.I64)) == ty.I64
        assert merge_return_types(fn("e", ty.I32), fn("f", ty.I64)) == ty.I64
        assert merge_return_types(fn("g", ty.DOUBLE), fn("h", ty.FLOAT)) == ty.DOUBLE


class TestMergedStructure:
    def test_merged_function_verifies(self):
        module, f1, f2 = _pair()
        result = merge_functions(f1, f2)
        verify_or_raise(result.merged)

    def test_func_id_is_first_parameter_when_needed(self):
        module, f1, f2 = _pair()
        result = merge_functions(f1, f2)
        assert result.uses_func_id
        assert result.merged.arguments[0] is result.func_id
        assert result.func_id.type == ty.I1

    def test_identical_functions_drop_func_id(self):
        module = Module()
        f1 = make_binary_chain_function(module, "orig", ["add", "mul"])
        f2 = clone_function(module, f1, "copy")
        result = merge_functions(f1, f2)
        assert not result.uses_func_id
        assert result.func_id is None
        assert len(result.merged.arguments) == len(f1.arguments)
        # and it is no bigger than one original
        assert result.merged.instruction_count() <= f1.instruction_count()

    def test_divergent_code_guarded_by_diamond(self):
        module, f1, f2 = _pair(opcodes1=("add",), opcodes2=("sub",))
        result = merge_functions(f1, f2)
        guards = [inst for inst in result.merged.instructions()
                  if inst.opcode == "br" and len(inst.operands) == 3
                  and inst.operands[0] is result.func_id]
        assert guards, "expected a conditional branch on func_id"

    def test_differing_constants_become_selects(self):
        module = Module()
        f1 = make_binary_chain_function(module, "three", ["add"], constant=3)
        f2 = make_binary_chain_function(module, "nine", ["add"], constant=9)
        result = merge_functions(f1, f2)
        selects = [i for i in result.merged.instructions() if i.opcode == "select"]
        assert len(selects) == 1
        assert vals.const_int(3) in selects[0].operands
        assert vals.const_int(9) in selects[0].operands

    def test_merged_size_smaller_than_sum_for_similar_functions(self):
        module, f1, f2 = _pair(opcodes1=("add", "mul"), opcodes2=("add", "mul"))
        # same opcodes but different constants: highly similar
        result = merge_functions(f1, f2)
        assert result.merged.instruction_count() < (f1.instruction_count()
                                                    + f2.instruction_count())

    def test_call_arguments_for_each_side(self):
        module, f1, f2 = _pair()
        result = merge_functions(f1, f2)
        args1 = result.call_arguments(0, list(f1.arguments))
        args2 = result.call_arguments(1, list(f2.arguments))
        assert len(args1) == len(result.merged.arguments)
        assert args1[0] == vals.const_bool(True)
        assert args2[0] == vals.const_bool(False)
        assert f1.arguments[0] in args1
        assert f2.arguments[0] in args2

    def test_side_of_rejects_foreign_function(self):
        module, f1, f2 = _pair()
        other = make_binary_chain_function(module, "other", ["mul"])
        result = merge_functions(f1, f2)
        with pytest.raises(ValueError):
            result.side_of(other)

    def test_merged_name_option(self):
        module, f1, f2 = _pair()
        result = merge_functions(f1, f2, MergeOptions(merged_name="combined"))
        assert result.merged.name == "combined"

    def test_different_return_types_produce_conversions(self):
        module = Module()
        f1 = module.create_function("narrow", ty.function_type(ty.I32, [ty.I32]))
        builder = IRBuilder(f1.append_block("entry"))
        builder.ret(builder.add(f1.arguments[0], vals.const_int(1)))
        f2 = module.create_function("wide", ty.function_type(ty.I64, [ty.I64]))
        builder = IRBuilder(f2.append_block("entry"))
        builder.ret(builder.add(f2.arguments[0], vals.const_int(1, 64)))
        result = merge_functions(f1, f2)
        assert result.merged.return_type == ty.I64
        assert result.needs_return_conversion(0)
        assert not result.needs_return_conversion(1)
        verify_or_raise(result.merged)

    def test_void_and_nonvoid_return_merge(self):
        module = Module()
        f1 = module.create_function("quiet", ty.function_type(ty.VOID, [ty.I32]))
        builder = IRBuilder(f1.append_block("entry"))
        slot = builder.alloca(ty.I32)
        builder.store(f1.arguments[0], slot)
        builder.ret_void()
        f2 = module.create_function("loud", ty.function_type(ty.I32, [ty.I32]))
        builder = IRBuilder(f2.append_block("entry"))
        slot = builder.alloca(ty.I32)
        builder.store(f2.arguments[0], slot)
        builder.ret(builder.load(slot))
        result = merge_functions(f1, f2)
        assert result.merged.return_type == ty.I32
        verify_or_raise(result.merged)

    def test_original_functions_untouched_by_codegen(self):
        module, f1, f2 = _pair()
        before1 = str(f1)
        before2 = str(f2)
        merge_functions(f1, f2)
        assert str(f1) == before1
        assert str(f2) == before2

    def test_alignment_statistics_exposed(self):
        module, f1, f2 = _pair(opcodes1=("add", "mul"), opcodes2=("add", "mul"))
        result = merge_functions(f1, f2)
        assert result.alignment.match_count > 0
        assert 0.0 < result.alignment.match_ratio() <= 1.0


class TestConvertValue:
    def test_no_op_for_same_type(self):
        value = vals.const_int(3)
        from repro.ir.basicblock import BasicBlock
        assert convert_value(value, ty.I32, BasicBlock("b")) is value

    def test_undef_converts_to_undef(self):
        from repro.ir.basicblock import BasicBlock
        converted = convert_value(vals.undef(ty.I32), ty.I64, BasicBlock("b"))
        assert isinstance(converted, vals.UndefValue)
        assert converted.type == ty.I64

    def test_casts_inserted_into_block(self):
        from repro.ir.basicblock import BasicBlock
        block = BasicBlock("b")
        arg = vals.Argument(ty.I32, "a", 0)
        converted = convert_value(arg, ty.I64, block)
        assert converted.opcode == "zext"
        assert converted in block.instructions

    def test_commutative_reordering_reduces_selects(self):
        module = Module()
        f1 = module.create_function("x", ty.function_type(ty.I32, [ty.I32, ty.I32]))
        builder = IRBuilder(f1.append_block("entry"))
        builder.ret(builder.add(f1.arguments[0], f1.arguments[1]))
        f2 = module.create_function("y", ty.function_type(ty.I32, [ty.I32, ty.I32]))
        builder = IRBuilder(f2.append_block("entry"))
        # same add but operands swapped
        builder.ret(builder.add(f2.arguments[1], f2.arguments[0]))
        with_reorder = merge_functions(f1, f2, MergeOptions(reorder_commutative=True))
        without_reorder = merge_functions(f1, f2, MergeOptions(reorder_commutative=False))
        selects_with = sum(1 for i in with_reorder.merged.instructions()
                           if i.opcode == "select")
        selects_without = sum(1 for i in without_reorder.merged.instructions()
                              if i.opcode == "select")
        assert selects_with <= selects_without
