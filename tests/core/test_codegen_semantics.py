"""Semantic-equivalence tests: merged functions must behave exactly like the
originals when executed in the interpreter."""

import random

import pytest

from repro.core import FunctionMergingPass, apply_merge, merge_functions
from repro.frontend import compile_source
from repro.ir import IRBuilder, Module, verify_or_raise
from repro.ir import types as ty
from repro.ir import values as vals
from repro.interp import Interpreter, standard_externals
from repro.workloads import (CASE_STUDY_PAIRS, add_call_sites, build_function,
                             clone_function, libquantum_module, mutate_constants,
                             mutate_opcodes, sphinx_module)
from repro.workloads.generators import FunctionSpec

from tests.helpers import (assert_semantically_equivalent,
                           make_binary_chain_function, make_caller, run_function)


def _merged_call(module, result, side, args):
    """Call the merged function directly on behalf of one original."""
    interp = Interpreter(module, standard_externals())
    call_args = []
    original = (result.function1, result.function2)[side]
    for merged_arg in result.merged.arguments:
        if merged_arg is result.func_id:
            call_args.append(1 if side == 0 else 0)
            continue
        bound = None
        for orig_arg, mapped in result.arg_maps[side].items():
            if mapped is merged_arg:
                bound = args[orig_arg.index]
                break
        call_args.append(bound if bound is not None else 0)
    return interp.run(result.merged, call_args)


class TestDirectMergeSemantics:
    def test_arithmetic_variants(self):
        module = Module()
        f1 = make_binary_chain_function(module, "f_add", ["add"], constant=2,
                                        linkage="external")
        f2 = make_binary_chain_function(module, "f_sub", ["sub"], constant=3,
                                        linkage="external")
        result = merge_functions(f1, f2)
        module.add_function(result.merged)
        verify_or_raise(module)
        for a, b in [(3, 4), (10, -2 & 0xFFFFFFFF), (0, 0), (-5 & 0xFFFFFFFF, 9)]:
            expected1 = run_function(module, "f_add", [a, b])
            expected2 = run_function(module, "f_sub", [a, b])
            assert _merged_call(module, result, 0, [a, b]) == expected1
            assert _merged_call(module, result, 1, [a, b]) == expected2

    def test_identical_functions_behave_identically(self):
        module = Module()
        f1 = make_binary_chain_function(module, "orig", ["add", "mul"], linkage="external")
        f2 = clone_function(module, f1, "copy")
        result = merge_functions(f1, f2)
        module.add_function(result.merged)
        for a, b in [(1, 2), (7, 7), (100, 3)]:
            expected = run_function(module, "orig", [a, b])
            got = Interpreter(module, standard_externals()).run(result.merged, [a, b])
            assert got == expected

    def test_different_return_types(self):
        module = Module()
        f1 = module.create_function("as32", ty.function_type(ty.I32, [ty.I32]),
                                    linkage="external")
        builder = IRBuilder(f1.append_block("entry"))
        builder.ret(builder.mul(f1.arguments[0], vals.const_int(3)))
        f2 = module.create_function("as64", ty.function_type(ty.I64, [ty.I64]),
                                    linkage="external")
        builder = IRBuilder(f2.append_block("entry"))
        builder.ret(builder.mul(f2.arguments[0], vals.const_int(3, 64)))
        result = merge_functions(f1, f2)
        module.add_function(result.merged)
        verify_or_raise(module)
        assert _merged_call(module, result, 0, [7]) & 0xFFFFFFFF == 21
        assert _merged_call(module, result, 1, [1 << 40]) == (3 << 40)


class TestCommittedMergeSemantics:
    def test_apply_merge_with_call_sites(self):
        def build():
            module = Module()
            f1 = make_binary_chain_function(module, "f_add", ["add"], constant=2)
            f2 = make_binary_chain_function(module, "f_sub", ["sub"], constant=3)
            make_caller(module, "main", [f1, f2])
            return module

        reference = build()
        merged_module = build()
        result = merge_functions(merged_module.get_function("f_add"),
                                 merged_module.get_function("f_sub"))
        apply_merge(merged_module, result)
        verify_or_raise(merged_module)
        assert_semantically_equivalent(reference, merged_module, "main",
                                       [[0], [5], [17], [-9 & 0xFFFFFFFF]])

    def test_thunks_created_for_external_functions(self):
        def build():
            module = Module()
            f1 = make_binary_chain_function(module, "f_add", ["add"], linkage="external")
            f2 = make_binary_chain_function(module, "f_sub", ["sub"], linkage="external")
            make_caller(module, "main", [f1, f2])
            return module

        reference = build()
        merged_module = build()
        result = merge_functions(merged_module.get_function("f_add"),
                                 merged_module.get_function("f_sub"))
        record = apply_merge(merged_module, result)
        assert record.disposition == ["thunk", "thunk"]
        assert merged_module.get_function("f_add") is not None
        verify_or_raise(merged_module)
        assert_semantically_equivalent(reference, merged_module, "main",
                                       [[0], [4], [123]])
        # thunk still callable directly under its original name
        assert (run_function(reference, "f_add", [2, 3])
                == run_function(merged_module, "f_add", [2, 3]))

    def test_recursive_function_merge(self):
        source = """
        int even_sum(int n) { if (n <= 0) return 0; return n + even_sum(n - 2); }
        int odd_sum(int n)  { if (n <= 1) return 1; return n + odd_sum(n - 2); }
        int main(int n) { return even_sum(n) * 1000 + odd_sum(n); }
        """
        reference = compile_source(source)
        merged_module = compile_source(source)
        result = merge_functions(merged_module.get_function("even_sum"),
                                 merged_module.get_function("odd_sum"))
        apply_merge(merged_module, result)
        verify_or_raise(merged_module)
        assert_semantically_equivalent(reference, merged_module, "main",
                                       [[0], [5], [10], [11]])


class TestCaseStudySemantics:
    def _sphinx_externals(self):
        externals = standard_externals()
        return externals

    def test_sphinx_pair_merges_and_preserves_memory_effects(self):
        reference = sphinx_module()
        merged_module = sphinx_module()
        f1 = merged_module.get_function("glist_add_float32")
        f2 = merged_module.get_function("glist_add_float64")
        result = merge_functions(f1, f2)
        assert result.uses_func_id
        # keep the originals as thunks so the test can still call them by name
        apply_merge(merged_module, result, allow_deletion=False)
        verify_or_raise(merged_module)

        def run_chain(module):
            interp = Interpreter(module, standard_externals())
            node32 = interp.run("glist_add_float32", [0, 1.5])
            node64 = interp.run("glist_add_float64", [node32, 2.25])
            # read back the stored fields through memory
            data32 = interp.memory.load(node32, ty.FLOAT)
            data64 = interp.memory.load(node64 + 4, ty.DOUBLE)
            next_pointer = interp.memory.load(node64 + 12, ty.pointer(ty.I8))
            return data32, data64, next_pointer == node32

        assert run_chain(reference) == run_chain(merged_module) == (1.5, 2.25, True)

    def test_libquantum_pair_merges_and_preserves_behaviour(self):
        reference = libquantum_module()
        merged_module = libquantum_module()
        f1 = merged_module.get_function("quantum_cond_phase_inv")
        f2 = merged_module.get_function("quantum_cond_phase")
        result = merge_functions(f1, f2)
        apply_merge(merged_module, result, allow_deletion=False)
        verify_or_raise(merged_module)

        def run_case(module, objcode_result):
            externals = standard_externals()
            calls = {"decohere": 0}
            externals["quantum_cexp"] = lambda i, args: args[0] * 0.5
            externals["quantum_objcode_put"] = lambda i, args: objcode_result
            externals["quantum_decohere"] = lambda i, args: calls.__setitem__(
                "decohere", calls["decohere"] + 1)
            interp = Interpreter(module, externals)
            # build a quantum_reg { size=2, node=* } with two nodes
            reg = interp.memory.allocate(16)
            nodes = interp.memory.allocate(32)
            interp.memory.store(reg, ty.I32, 2)
            interp.memory.store(reg + 4, ty.pointer(ty.I8), nodes)
            for index, (state, amp) in enumerate([(0b11, 2.0), (0b01, 4.0)]):
                interp.memory.store(nodes + index * 16, ty.I32, state)
                interp.memory.store(nodes + index * 16 + 8, ty.DOUBLE, amp)
            interp.run("quantum_cond_phase_inv", [1, 0, reg])
            interp.run("quantum_cond_phase", [1, 0, reg])
            amplitudes = [interp.memory.load(nodes + i * 16 + 8, ty.DOUBLE) for i in range(2)]
            return amplitudes, calls["decohere"]

        for objcode in (0, 1):
            assert run_case(reference, objcode) == run_case(merged_module, objcode)


class TestRandomizedMergePass:
    @pytest.mark.parametrize("seed", [1, 7, 23])
    def test_generated_workload_semantics_preserved(self, seed):
        def build():
            rng = random.Random(seed)
            module = Module(f"random{seed}")
            base_spec = FunctionSpec(name="base", num_blocks=3, instructions_per_block=6,
                                     seed=seed)
            base = build_function(module, base_spec, random.Random(seed))
            sibling = clone_function(module, base, "sibling")
            mutate_opcodes(sibling, rng, 0.3)
            mutate_constants(sibling, rng, 0.3)
            other_spec = FunctionSpec(name="other", num_blocks=2, instructions_per_block=5,
                                      seed=seed + 100, float_ratio=0.5)
            other = build_function(module, other_spec, random.Random(seed + 100))
            add_call_sites(module, [base, sibling, other], rng)
            return module

        externals = standard_externals()
        externals["helper_log"] = lambda i, args: (int(args[0]) * 7 + 3) & 0xFFFFFFFF
        externals["helper_fclamp"] = lambda i, args: max(0.0, min(100.0, float(args[0])))
        externals["helper_notify"] = lambda i, args: None
        externals["guard_check"] = lambda i, args: 1 if int(args[0]) % 3 == 0 else 0

        reference = build()
        optimized = build()
        report = FunctionMergingPass(exploration_threshold=3).run(optimized)
        verify_or_raise(optimized)
        assert report.merge_count >= 1
        for n in (0, 1, 5, 13):
            expected = run_function(reference, "driver_main", [n], externals)
            actual = run_function(optimized, "driver_main", [n], externals)
            assert expected == actual, f"seed {seed}, n={n}"
