"""Property-based tests (hypothesis) for the alignment algorithms."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (ScoringScheme, hirschberg, needleman_wunsch,
                        needleman_wunsch_banded, needleman_wunsch_banded_keyed,
                        needleman_wunsch_keyed)
from repro.core.alignment import (MIN_DERIVED_BAND_MARGIN, _try_banded,
                                  derive_band_margin)

short_text = st.text(alphabet="ABCD", max_size=14)
tiny_text = st.text(alphabet="AB", max_size=7)
band_margins = st.one_of(st.none(), st.integers(min_value=0, max_value=6))


def entry_pairs(result):
    return [(e.left, e.right) for e in result.entries]


def brute_force_score(seq1, seq2, scoring=ScoringScheme()):
    """Exponential reference: the optimal global alignment score."""
    from functools import lru_cache

    @lru_cache(maxsize=None)
    def best(i, j):
        if i == len(seq1):
            return (len(seq2) - j) * scoring.gap
        if j == len(seq2):
            return (len(seq1) - i) * scoring.gap
        diagonal = best(i + 1, j + 1) + (
            scoring.match if seq1[i] == seq2[j] else scoring.mismatch)
        up = best(i + 1, j) + scoring.gap
        left = best(i, j + 1) + scoring.gap
        return max(diagonal, up, left)

    return best(0, 0)


@settings(max_examples=60, deadline=None)
@given(tiny_text, tiny_text)
def test_nw_score_is_optimal(seq1, seq2):
    assert needleman_wunsch(seq1, seq2).score == brute_force_score(seq1, seq2)


@settings(max_examples=80, deadline=None)
@given(short_text, short_text)
def test_alignment_preserves_both_sequences(seq1, seq2):
    entries = needleman_wunsch(seq1, seq2).entries
    assert "".join(e.left for e in entries if e.left is not None) == seq1
    assert "".join(e.right for e in entries if e.right is not None) == seq2


@settings(max_examples=80, deadline=None)
@given(short_text, short_text)
def test_every_column_is_match_or_one_sided(seq1, seq2):
    for entry in needleman_wunsch(seq1, seq2).entries:
        if entry.is_match:
            assert entry.left == entry.right  # default equivalence is equality
        else:
            assert (entry.left is None) != (entry.right is None)


@settings(max_examples=80, deadline=None)
@given(short_text, short_text)
def test_alignment_length_bounds(seq1, seq2):
    entries = needleman_wunsch(seq1, seq2).entries
    # every column consumes at least one element, and no element is dropped
    assert max(len(seq1), len(seq2)) <= len(entries) <= len(seq1) + len(seq2)


@settings(max_examples=60, deadline=None)
@given(short_text, short_text)
def test_hirschberg_matches_needleman_wunsch_score(seq1, seq2):
    assert hirschberg(seq1, seq2).score == needleman_wunsch(seq1, seq2).score


@settings(max_examples=60, deadline=None)
@given(short_text)
def test_self_alignment_is_all_matches(seq):
    result = needleman_wunsch(seq, seq)
    assert result.match_count == len(seq)
    assert result.gap_count == 0


@settings(max_examples=60, deadline=None)
@given(short_text, short_text)
def test_alignment_is_symmetric_in_score(seq1, seq2):
    assert (needleman_wunsch(seq1, seq2).score
            == needleman_wunsch(seq2, seq1).score)


# -- banded and keyed kernels: exact parity with the full DP -----------------

@settings(max_examples=120, deadline=None)
@given(short_text, short_text, band_margins)
def test_banded_matches_full_nw_score_and_entries(seq1, seq2, margin):
    full = needleman_wunsch(seq1, seq2)
    banded = needleman_wunsch_banded(seq1, seq2, band_margin=margin)
    assert banded.score == full.score
    assert entry_pairs(banded) == entry_pairs(full)


@settings(max_examples=60, deadline=None)
@given(short_text, short_text,
       st.integers(1, 3), st.integers(-3, 0), st.integers(-3, 0))
def test_banded_matches_full_nw_under_any_scoring(seq1, seq2, match, mismatch, gap):
    scoring = ScoringScheme(match=match, mismatch=mismatch, gap=gap)
    full = needleman_wunsch(seq1, seq2, scoring=scoring)
    banded = needleman_wunsch_banded(seq1, seq2, scoring=scoring, band_margin=1)
    assert banded.score == full.score
    assert entry_pairs(banded) == entry_pairs(full)


@settings(max_examples=80, deadline=None)
@given(short_text, short_text)
def test_keyed_kernel_matches_predicate_nw(seq1, seq2):
    keys1 = [ord(c) for c in seq1]
    keys2 = [ord(c) for c in seq2]
    full = needleman_wunsch(seq1, seq2)
    keyed = needleman_wunsch_keyed(seq1, seq2, keys1, keys2)
    assert keyed.score == full.score
    assert entry_pairs(keyed) == entry_pairs(full)


@settings(max_examples=80, deadline=None)
@given(short_text, short_text, band_margins)
def test_banded_keyed_kernel_matches_full_nw(seq1, seq2, margin):
    keys1 = [ord(c) for c in seq1]
    keys2 = [ord(c) for c in seq2]
    full = needleman_wunsch(seq1, seq2)
    banded = needleman_wunsch_banded_keyed(seq1, seq2, keys1, keys2,
                                           band_margin=margin)
    assert banded.score == full.score
    assert entry_pairs(banded) == entry_pairs(full)


@settings(max_examples=60, deadline=None)
@given(short_text)
def test_hirschberg_threads_score_out_of_divide_and_conquer(seq):
    # self-alignment: optimal score is len(seq) matches, no rescoring pass
    result = hirschberg(seq, seq)
    assert result.score == len(seq)


# -- key-derived band margins (the banded kernel's default) ------------------

@settings(max_examples=80, deadline=None)
@given(st.lists(st.integers(0, 5), max_size=20),
       st.lists(st.integers(0, 5), max_size=20))
def test_derived_margin_counts_unmatchable_entries(keys1, keys2):
    margin = derive_band_margin(keys1, keys2, floor=0)
    # never below the forced length imbalance, never above everything
    assert abs(len(keys1) - len(keys2)) <= margin <= len(keys1) + len(keys2)
    # permutations have identical key multisets: zero unmatchable entries
    assert derive_band_margin(keys1, list(reversed(keys1)), floor=0) == 0


@settings(max_examples=60, deadline=None)
@given(st.lists(st.integers(0, 3), min_size=1, max_size=16),
       st.lists(st.integers(0, 3), min_size=1, max_size=16))
def test_banded_keyed_with_derived_margin_matches_full(keys1, keys2):
    # band_margin=None now derives the margin from the key multisets; the
    # certificate must still guarantee exact parity with the full DP
    full = needleman_wunsch_keyed(keys1, keys2, keys1, keys2)
    banded = needleman_wunsch_banded_keyed(keys1, keys2, keys1, keys2)
    assert banded.score == full.score
    assert entry_pairs(banded) == entry_pairs(full)


def test_near_identical_sequences_certify_with_narrow_band():
    # a large nearly-identical pair: the old fixed margin was min(n, m) // 8
    # (wide); the derived margin stays at the floor and still certifies,
    # which is the whole point of deriving it from the key distance
    keys1 = list(range(400))
    keys2 = list(range(400))
    keys2[200] = 9999  # one mutated entry
    margin = derive_band_margin(keys1, keys2)
    assert margin == MIN_DERIVED_BAND_MARGIN
    certified = _try_banded(keys1, keys2, lambda i, j: keys1[i] == keys2[j],
                            ScoringScheme(), margin)
    assert certified is not None  # no full-DP fallback
    full = needleman_wunsch_keyed(keys1, keys2, keys1, keys2)
    assert certified.score == full.score
    assert entry_pairs(certified) == entry_pairs(full)
