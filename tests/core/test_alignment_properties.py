"""Property-based tests (hypothesis) for the alignment algorithms."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ScoringScheme, hirschberg, needleman_wunsch

short_text = st.text(alphabet="ABCD", max_size=14)
tiny_text = st.text(alphabet="AB", max_size=7)


def brute_force_score(seq1, seq2, scoring=ScoringScheme()):
    """Exponential reference: the optimal global alignment score."""
    from functools import lru_cache

    @lru_cache(maxsize=None)
    def best(i, j):
        if i == len(seq1):
            return (len(seq2) - j) * scoring.gap
        if j == len(seq2):
            return (len(seq1) - i) * scoring.gap
        diagonal = best(i + 1, j + 1) + (
            scoring.match if seq1[i] == seq2[j] else scoring.mismatch)
        up = best(i + 1, j) + scoring.gap
        left = best(i, j + 1) + scoring.gap
        return max(diagonal, up, left)

    return best(0, 0)


@settings(max_examples=60, deadline=None)
@given(tiny_text, tiny_text)
def test_nw_score_is_optimal(seq1, seq2):
    assert needleman_wunsch(seq1, seq2).score == brute_force_score(seq1, seq2)


@settings(max_examples=80, deadline=None)
@given(short_text, short_text)
def test_alignment_preserves_both_sequences(seq1, seq2):
    entries = needleman_wunsch(seq1, seq2).entries
    assert "".join(e.left for e in entries if e.left is not None) == seq1
    assert "".join(e.right for e in entries if e.right is not None) == seq2


@settings(max_examples=80, deadline=None)
@given(short_text, short_text)
def test_every_column_is_match_or_one_sided(seq1, seq2):
    for entry in needleman_wunsch(seq1, seq2).entries:
        if entry.is_match:
            assert entry.left == entry.right  # default equivalence is equality
        else:
            assert (entry.left is None) != (entry.right is None)


@settings(max_examples=80, deadline=None)
@given(short_text, short_text)
def test_alignment_length_bounds(seq1, seq2):
    entries = needleman_wunsch(seq1, seq2).entries
    # every column consumes at least one element, and no element is dropped
    assert max(len(seq1), len(seq2)) <= len(entries) <= len(seq1) + len(seq2)


@settings(max_examples=60, deadline=None)
@given(short_text, short_text)
def test_hirschberg_matches_needleman_wunsch_score(seq1, seq2):
    assert hirschberg(seq1, seq2).score == needleman_wunsch(seq1, seq2).score


@settings(max_examples=60, deadline=None)
@given(short_text)
def test_self_alignment_is_all_matches(seq):
    result = needleman_wunsch(seq, seq)
    assert result.match_count == len(seq)
    assert result.gap_count == 0


@settings(max_examples=60, deadline=None)
@given(short_text, short_text)
def test_alignment_is_symmetric_in_score(seq1, seq2):
    assert (needleman_wunsch(seq1, seq2).score
            == needleman_wunsch(seq2, seq1).score)
