"""Tests for CFG linearization."""

import pytest

from repro.core import linearize, sequence_signature
from repro.core.linearizer import LinearEntry, block_order
from repro.ir import IRBuilder, Module
from repro.ir import types as ty
from repro.ir import values as vals

from tests.helpers import make_accumulator_function, make_binary_chain_function


def _diamond(module):
    function = module.create_function("diamond", ty.function_type(ty.I32, [ty.I32]))
    entry = function.append_block("entry")
    left = function.append_block("left")
    right = function.append_block("right")
    join = function.append_block("join")
    builder = IRBuilder(entry)
    cond = builder.icmp("sgt", function.arguments[0], vals.const_int(0))
    builder.cond_br(cond, left, right)
    IRBuilder(left).br(join)
    IRBuilder(right).br(join)
    IRBuilder(join).ret(function.arguments[0])
    return function


class TestLinearize:
    def test_every_block_contributes_label_plus_instructions(self):
        module = Module()
        function = _diamond(module)
        entries = linearize(function)
        labels = [e for e in entries if e.is_label]
        instructions = [e for e in entries if e.is_instruction]
        assert len(labels) == len(function.blocks)
        assert len(instructions) == function.instruction_count()
        assert len(entries) == len(labels) + len(instructions)

    def test_instruction_order_preserved_within_blocks(self):
        module = Module()
        function = make_binary_chain_function(module, "chain", ["add", "sub", "mul"])
        entries = linearize(function)
        signature = sequence_signature(entries)
        entry_ops = signature[signature.index("label") + 1:]
        assert entry_ops[:4] == ["add", "sub", "mul", "mul"]

    def test_label_precedes_its_instructions(self):
        module = Module()
        function = _diamond(module)
        entries = linearize(function)
        current_block = None
        for entry in entries:
            if entry.is_label:
                current_block = entry.value
            else:
                assert entry.value.parent is current_block

    def test_rpo_starts_with_entry_and_visits_all(self):
        module = Module()
        function = make_accumulator_function(module, "acc")
        order = block_order(function, "rpo")
        assert order[0] is function.entry_block
        assert set(id(b) for b in order) == set(id(b) for b in function.blocks)

    def test_traversals_are_permutations_of_each_other(self):
        module = Module()
        function = _diamond(module)
        rpo = {id(b) for b in block_order(function, "rpo")}
        layout = {id(b) for b in block_order(function, "layout")}
        dfs = {id(b) for b in block_order(function, "dfs")}
        assert rpo == layout == dfs

    def test_unknown_traversal_rejected(self):
        module = Module()
        function = _diamond(module)
        with pytest.raises(ValueError):
            linearize(function, "zigzag")

    def test_declaration_linearizes_to_empty(self):
        module = Module()
        declaration = module.create_function("ext", ty.function_type(ty.VOID, []),
                                             linkage="external")
        assert linearize(declaration) == []

    def test_deterministic(self):
        module = Module()
        function = _diamond(module)
        first = sequence_signature(linearize(function))
        second = sequence_signature(linearize(function))
        assert first == second

    def test_entry_kinds(self):
        module = Module()
        function = _diamond(module)
        entries = linearize(function)
        assert entries[0].is_label and not entries[0].is_instruction
        assert entries[1].is_instruction
        assert entries[0].opcode_or_label() == "label"
        assert entries[1].opcode_or_label() == "icmp"
