"""Tests for CFG linearization."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (EquivalenceKeyInterner, linearize,
                        linearize_with_keys, sequence_signature)
from repro.core.linearizer import LinearEntry, block_order
from repro.ir import IRBuilder, Module
from repro.ir import types as ty
from repro.ir import values as vals
from repro.ir.instructions import Call
from repro.workloads import FamilySpec, FunctionSpec, make_family

from tests.helpers import make_accumulator_function, make_binary_chain_function


def _diamond(module):
    function = module.create_function("diamond", ty.function_type(ty.I32, [ty.I32]))
    entry = function.append_block("entry")
    left = function.append_block("left")
    right = function.append_block("right")
    join = function.append_block("join")
    builder = IRBuilder(entry)
    cond = builder.icmp("sgt", function.arguments[0], vals.const_int(0))
    builder.cond_br(cond, left, right)
    IRBuilder(left).br(join)
    IRBuilder(right).br(join)
    IRBuilder(join).ret(function.arguments[0])
    return function


class TestLinearize:
    def test_every_block_contributes_label_plus_instructions(self):
        module = Module()
        function = _diamond(module)
        entries = linearize(function)
        labels = [e for e in entries if e.is_label]
        instructions = [e for e in entries if e.is_instruction]
        assert len(labels) == len(function.blocks)
        assert len(instructions) == function.instruction_count()
        assert len(entries) == len(labels) + len(instructions)

    def test_instruction_order_preserved_within_blocks(self):
        module = Module()
        function = make_binary_chain_function(module, "chain", ["add", "sub", "mul"])
        entries = linearize(function)
        signature = sequence_signature(entries)
        entry_ops = signature[signature.index("label") + 1:]
        assert entry_ops[:4] == ["add", "sub", "mul", "mul"]

    def test_label_precedes_its_instructions(self):
        module = Module()
        function = _diamond(module)
        entries = linearize(function)
        current_block = None
        for entry in entries:
            if entry.is_label:
                current_block = entry.value
            else:
                assert entry.value.parent is current_block

    def test_rpo_starts_with_entry_and_visits_all(self):
        module = Module()
        function = make_accumulator_function(module, "acc")
        order = block_order(function, "rpo")
        assert order[0] is function.entry_block
        assert set(id(b) for b in order) == set(id(b) for b in function.blocks)

    def test_traversals_are_permutations_of_each_other(self):
        module = Module()
        function = _diamond(module)
        rpo = {id(b) for b in block_order(function, "rpo")}
        layout = {id(b) for b in block_order(function, "layout")}
        dfs = {id(b) for b in block_order(function, "dfs")}
        assert rpo == layout == dfs

    def test_unknown_traversal_rejected(self):
        module = Module()
        function = _diamond(module)
        with pytest.raises(ValueError):
            linearize(function, "zigzag")

    def test_declaration_linearizes_to_empty(self):
        module = Module()
        declaration = module.create_function("ext", ty.function_type(ty.VOID, []),
                                             linkage="external")
        assert linearize(declaration) == []

    def test_deterministic(self):
        module = Module()
        function = _diamond(module)
        first = sequence_signature(linearize(function))
        second = sequence_signature(linearize(function))
        assert first == second

    def test_entry_kinds(self):
        module = Module()
        function = _diamond(module)
        entries = linearize(function)
        assert entries[0].is_label and not entries[0].is_instruction
        assert entries[1].is_instruction
        assert entries[0].opcode_or_label() == "label"
        assert entries[1].opcode_or_label() == "icmp"


# -- canonical digests (the interner-independent content address) ------------

def _family_module(seed, families=3):
    module = Module(f"canon_{seed}")
    rng = random.Random(seed)
    for index in range(families):
        spec = FunctionSpec(
            f"fam{index}",
            num_blocks=2 + (index + seed) % 3,
            instructions_per_block=4 + ((index + seed) % 3) * 2,
            call_ratio=0.3, memory_ratio=0.2,
            returns_float=bool((index + seed) % 4 == 1),
            seed=700 + 11 * seed + index)
        make_family(module, spec,
                    FamilySpec(identical=2, structural=1, partial=1), rng)
    return module


class TestCanonicalDigest:
    """`canonical_digest` equals across interners iff the equivalence-key
    sequences are structurally equal (the persistent cache's key property);
    within one interner it agrees with the per-run `content_digest` except
    on never-equivalent entries, where it is strictly more precise."""

    @settings(max_examples=15, deadline=None)
    @given(st.integers(0, 10_000))
    def test_equal_across_interners_iff_key_sequences_equal(self, seed):
        module = _family_module(seed)
        functions = list(module.defined_functions())

        # interner A sees functions in order, interner B in reverse: the
        # integer ids assigned to each equivalence class differ, the
        # canonical digests must not
        a, b = EquivalenceKeyInterner(), EquivalenceKeyInterner()
        lins_a = {f.name: linearize_with_keys(f, "rpo", a) for f in functions}
        lins_b = {f.name: linearize_with_keys(f, "rpo", b)
                  for f in reversed(functions)}
        for name in lins_a:
            assert (lins_a[name].canonical_digest()
                    == lins_b[name].canonical_digest())

        # within one interner, digest equality must match key-sequence
        # equality for every function pair (the iff direction)
        names = sorted(lins_a)
        for n1 in names:
            for n2 in names:
                keys_equal = lins_a[n1].keys == lins_a[n2].keys
                assert keys_equal == (lins_a[n1].canonical_digest()
                                      == lins_a[n2].canonical_digest())
                # per-run digests agree with canonical equality here too
                # (no never-equivalent entries in the generated population)
                assert keys_equal == (lins_a[n1].content_digest()
                                      == lins_a[n2].content_digest())

    def test_identical_clones_share_digest_across_interners(self):
        module = _family_module(3)
        lin1 = linearize_with_keys(module.get_function("fam0"))
        lin2 = linearize_with_keys(module.get_function("fam0_ident0"))
        assert lin1.canonical_digest() == lin2.canonical_digest()

    def test_digest_tracks_structural_difference(self):
        module = Module()
        f = make_binary_chain_function(module, "f", ["add", "mul", "sub"])
        g = make_binary_chain_function(module, "g", ["add", "xor", "sub"])
        interner = EquivalenceKeyInterner()
        assert (linearize_with_keys(f, "rpo", interner).canonical_digest()
                != linearize_with_keys(g, "rpo", interner).canonical_digest())

    def test_never_equivalent_entries_use_the_stable_marker(self):
        # a call through an untyped pointer is equivalent to nothing, so the
        # shared interner hands each clone a fresh negative id and their
        # per-run digests diverge; canonically both encode the same marker
        # in the same position, which is sound because such an entry
        # matches *nothing* in the opposite sequence either way
        module = Module()

        def opaque_call(name):
            fn = module.create_function(
                name, ty.function_type(ty.I32, [ty.pointer(ty.I8), ty.I32]))
            builder = IRBuilder(fn.append_block("entry"))
            builder._insert(Call(fn.arguments[0], [], return_type=ty.I32))
            builder.ret(fn.arguments[1])
            return fn

        interner = EquivalenceKeyInterner()
        lin1 = linearize_with_keys(opaque_call("f"), "rpo", interner)
        lin2 = linearize_with_keys(opaque_call("g"), "rpo", interner)
        assert any(key < 0 for key in lin1.keys)
        assert lin1.keys != lin2.keys
        assert lin1.content_digest() != lin2.content_digest()
        assert lin1.canonical_digest() == lin2.canonical_digest()

    def test_digest_is_cached(self):
        module = Module()
        f = make_binary_chain_function(module, "f", ["add", "mul"])
        lin = linearize_with_keys(f)
        assert lin.canonical_digest() is lin.canonical_digest()
