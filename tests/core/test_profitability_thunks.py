"""Tests for the profitability cost model and merge committing (thunks)."""

import pytest

from repro.core import (MergeEvaluation, apply_merge, build_thunk, estimate_profit,
                        merge_functions)
from repro.ir import CallGraph, IRBuilder, Module, verify_or_raise
from repro.ir import types as ty
from repro.ir import values as vals
from repro.targets import ARM_THUMB, X86_64
from repro.workloads import clone_function, mutate_constants

from tests.helpers import make_binary_chain_function, make_caller, run_function
import random


class TestMergeEvaluation:
    def test_delta_formula(self):
        evaluation = MergeEvaluation(size_function1=100, size_function2=90,
                                     size_merged=120, extra_cost1=10, extra_cost2=5)
        assert evaluation.epsilon == 15
        assert evaluation.delta == 190 - 135
        assert evaluation.profitable

    def test_not_profitable_when_delta_zero_or_negative(self):
        evaluation = MergeEvaluation(50, 50, 100, 0, 0)
        assert evaluation.delta == 0
        assert not evaluation.profitable

    def test_similar_functions_are_profitable(self):
        module = Module()
        f1 = make_binary_chain_function(module, "a", ["add", "mul", "add"])
        f2 = make_binary_chain_function(module, "b", ["add", "mul", "add"], constant=7)
        result = merge_functions(f1, f2)
        evaluation = estimate_profit(result, X86_64)
        assert evaluation.profitable
        assert evaluation.deletable1 and evaluation.deletable2

    def test_dissimilar_functions_are_not_profitable(self):
        module = Module()
        f1 = make_binary_chain_function(module, "ints", ["add", "mul", "xor", "and"])
        f2 = module.create_function("floats", ty.function_type(ty.DOUBLE, [ty.DOUBLE]))
        builder = IRBuilder(f2.append_block("entry"))
        value = f2.arguments[0]
        for _ in range(6):
            value = builder.fmul(value, vals.const_float(1.5))
        builder.ret(value)
        result = merge_functions(f1, f2)
        evaluation = estimate_profit(result, X86_64)
        assert not evaluation.profitable

    def test_thunk_cost_charged_for_external_functions(self):
        module = Module()
        f1 = make_binary_chain_function(module, "a", ["add"], linkage="external")
        f2 = make_binary_chain_function(module, "b", ["sub"], linkage="external")
        result = merge_functions(f1, f2)
        graph = CallGraph(module)
        evaluation = estimate_profit(result, X86_64, graph)
        assert not evaluation.deletable1 and not evaluation.deletable2
        assert evaluation.extra_cost1 >= X86_64.function_overhead
        internal = estimate_profit(merge_functions(
            make_binary_chain_function(module, "c", ["add"]),
            make_binary_chain_function(module, "d", ["sub"])), X86_64, graph)
        assert internal.epsilon <= evaluation.epsilon

    def test_call_site_growth_charged_when_deleting(self):
        module = Module()
        f1 = make_binary_chain_function(module, "a", ["add"])
        f2 = make_binary_chain_function(module, "b", ["sub"])
        make_caller(module, "main", [f1, f1, f2])
        result = merge_functions(f1, f2)
        graph = CallGraph(module)
        evaluation = estimate_profit(result, X86_64, graph)
        no_callers = estimate_profit(result, X86_64, None)
        assert evaluation.extra_cost1 >= 0
        assert evaluation.deletable1

    def test_targets_can_disagree_on_marginal_merges(self):
        module = Module()
        f1 = make_binary_chain_function(module, "a", ["add", "mul"])
        f2 = make_binary_chain_function(module, "b", ["sub", "mul"], constant=9)
        result = merge_functions(f1, f2)
        x86 = estimate_profit(result, X86_64)
        arm = estimate_profit(result, ARM_THUMB)
        # both should at least compute sensible sizes
        assert x86.size_merged > 0 and arm.size_merged > 0


class TestApplyMerge:
    def test_deletes_internal_originals_and_updates_calls(self):
        module = Module()
        f1 = make_binary_chain_function(module, "a", ["add"])
        f2 = make_binary_chain_function(module, "b", ["sub"])
        make_caller(module, "main", [f1, f2])
        result = merge_functions(f1, f2)
        record = apply_merge(module, result)
        assert record.disposition == ["deleted", "deleted"]
        assert record.updated_call_sites == 2
        assert module.get_function("a") is None
        assert module.get_function("b") is None
        assert module.get_function(record.merged_name) is result.merged
        verify_or_raise(module)

    def test_keeps_thunks_for_address_taken_functions(self):
        module = Module()
        f1 = make_binary_chain_function(module, "a", ["add"])
        f2 = make_binary_chain_function(module, "b", ["sub"])
        # take the address of `a`
        user = module.create_function("user", ty.function_type(ty.VOID, []),
                                      linkage="external")
        builder = IRBuilder(user.append_block("entry"))
        slot = builder.alloca(f1.type)
        builder.store(f1, slot)
        builder.ret_void()
        CallGraph(module)  # sets address_taken flags
        result = merge_functions(f1, f2)
        record = apply_merge(module, result)
        assert record.disposition[0] == "thunk"
        assert module.get_function("a") is not None
        verify_or_raise(module)

    def test_allow_deletion_false_always_thunks(self):
        module = Module()
        f1 = make_binary_chain_function(module, "a", ["add"])
        f2 = make_binary_chain_function(module, "b", ["sub"])
        result = merge_functions(f1, f2)
        record = apply_merge(module, result, allow_deletion=False)
        assert record.disposition == ["thunk", "thunk"]
        thunk = module.get_function("a")
        assert thunk.instruction_count() == 2  # call + ret
        verify_or_raise(module)

    def test_merged_name_uniquified(self):
        module = Module()
        f1 = make_binary_chain_function(module, "a", ["add"])
        f2 = make_binary_chain_function(module, "b", ["sub"])
        module.create_function("__merged_a_b", ty.function_type(ty.VOID, []),
                               linkage="external")
        result = merge_functions(f1, f2)
        record = apply_merge(module, result)
        assert record.merged_name != "__merged_a_b"
        assert module.get_function(record.merged_name) is not None

    def test_build_thunk_structure(self):
        module = Module()
        f1 = make_binary_chain_function(module, "a", ["add"], linkage="external")
        f2 = make_binary_chain_function(module, "b", ["sub"], linkage="external")
        result = merge_functions(f1, f2)
        module.add_function(result.merged)
        build_thunk(f1, result)
        assert f1.instruction_count() == 2
        call = f1.entry_block.instructions[0]
        assert call.opcode == "call"
        assert call.operands[0] is result.merged
        verify_or_raise(f1)

    def test_thunk_semantics_match_original(self):
        module = Module()
        f1 = make_binary_chain_function(module, "a", ["add"], linkage="external")
        f2 = make_binary_chain_function(module, "b", ["sub"], linkage="external")
        expected = run_function(module, "a", [6, 7])
        result = merge_functions(f1, f2)
        module.add_function(result.merged)
        build_thunk(f1, result)
        verify_or_raise(module)
        assert run_function(module, "a", [6, 7]) == expected

    def test_identical_clone_merge_and_commit(self):
        module = Module()
        rng = random.Random(3)
        f1 = make_binary_chain_function(module, "a", ["add", "mul"])
        f2 = clone_function(module, f1, "a_clone")
        mutate_constants(f2, rng, 0.5)
        make_caller(module, "main", [f1, f2])
        before = run_function(module, "main", [9])
        result = merge_functions(f1, f2)
        evaluation = estimate_profit(result, X86_64, CallGraph(module))
        assert evaluation.profitable
        apply_merge(module, result)
        verify_or_raise(module)
        assert run_function(module, "main", [9]) == before
