"""Tests for the plan/commit scheduler: bit-identical parity with the seed
serial engine across executors / job counts / batch sizes, incremental
call-graph maintenance verified against from-scratch rebuilds after every
commit, oracle profit-bound pruning, and the stale/conflict accounting."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import FunctionMergingPass, MergeEngine, numpy_available
from repro.core.engine import make_executor
from repro.ir import Module, verify_or_raise
from repro.ir.callgraph import CallGraph
from repro.workloads import FamilySpec, FunctionSpec, make_family


def build_module(seed=7, families=4, clones=2):
    """Deterministic multi-family module population."""
    module = Module(f"sched_{seed}")
    rng = random.Random(seed)
    for index in range(families):
        spec = FunctionSpec(
            f"fam{index}",
            num_blocks=2 + (index + seed) % 3,
            instructions_per_block=4 + ((index + seed) % 4) * 2,
            call_ratio=0.3, memory_ratio=0.2,
            returns_float=bool((index + seed) % 5 == 1),
            seed=100 + 13 * seed + index)
        make_family(module, spec,
                    FamilySpec(identical=1, structural=clones, partial=1), rng)
    return module


def decisions(report):
    return [(m.function1, m.function2, m.merged_name, m.rank_position, m.delta)
            for m in report.merges]


#: The seed engine configuration: linear scan, predicate alignment, serial
#: loop with rebuild-per-commit - the pre-scheduler implementation.
SEED_CONFIG = dict(searcher="linear", keyed_alignment=False,
                   jobs=1, batch_size=1, incremental_callgraph=False)


class TestSchedulerParity:
    """The parallel scheduler reproduces the seed engine bit for bit."""

    @settings(max_examples=12, deadline=None)
    @given(st.integers(0, 10_000), st.integers(2, 5))
    def test_jobs_parity_on_randomized_modules(self, seed, families):
        reference = FunctionMergingPass(
            exploration_threshold=2, **SEED_CONFIG).run(build_module(seed, families))
        for jobs in (1, 2, 8):
            module = build_module(seed, families)
            report = FunctionMergingPass(exploration_threshold=2,
                                         jobs=jobs).run(module)
            assert decisions(report) == decisions(reference)
            assert report.candidates_evaluated == reference.candidates_evaluated
            assert report.codegen_failures == reference.codegen_failures
            verify_or_raise(module)

    @settings(max_examples=8, deadline=None)
    @given(st.integers(0, 10_000), st.integers(1, 32))
    def test_batch_size_never_changes_decisions(self, seed, batch_size):
        reference = FunctionMergingPass(
            exploration_threshold=2, **SEED_CONFIG).run(build_module(seed))
        report = FunctionMergingPass(exploration_threshold=2, jobs=2,
                                     batch_size=batch_size).run(build_module(seed))
        assert decisions(report) == decisions(reference)

    def test_thread_executor_parity_under_oracle(self):
        reference = FunctionMergingPass(oracle=True, oracle_prune=False,
                                        **SEED_CONFIG).run(build_module(3))
        for jobs in (2, 8):
            report = FunctionMergingPass(oracle=True, jobs=jobs,
                                         batch_size=8).run(build_module(3))
            assert decisions(report) == decisions(reference)

    def test_stale_entries_match_seed_silent_skips(self):
        # the seed engine silently dropped consumed worklist names; the
        # scheduler must count exactly those
        module = build_module(5)
        report = FunctionMergingPass(exploration_threshold=2).run(module)
        assert report.stale_entries > 0
        # every committed merge consumes its candidate, whose own worklist
        # entry then pops stale (unless it was already popped earlier)
        assert report.stale_entries <= report.functions_considered
        assert report.scheduler_stats["stale_entries"] == report.stale_entries

    def test_conflicts_are_detected_and_requeued(self):
        # batch the whole worklist: every commit invalidates later plans in
        # the same batch, so conflicts must surface (and be replanned)
        serial = FunctionMergingPass(exploration_threshold=2,
                                     batch_size=1).run(build_module(7, families=6))
        batched_module = build_module(7, families=6)
        batched = FunctionMergingPass(exploration_threshold=2, jobs=1,
                                      executor="thread",
                                      batch_size=64).run(batched_module)
        assert decisions(batched) == decisions(serial)
        stats = batched.scheduler_stats
        assert stats["batch_size"] == 64
        assert stats["conflicts"] > 0
        assert stats["replans"] == stats["conflicts"]
        assert stats["committed"] == batched.merge_count
        # serial single-entry batches can never conflict
        assert serial.scheduler_stats["conflicts"] == 0
        verify_or_raise(batched_module)


#: Every selectable alignment kernel (None = the engine default); the NumPy
#: backends join in when the ``fast`` extra is installed.
KERNELS = [None, "nw-banded"] + (
    ["nw-numpy", "nw-banded-numpy", "nw-wavefront-numpy"]
    if numpy_available() else [])


class TestKernelParity:
    """Merge decisions are bit-identical to the seed serial engine for every
    alignment kernel x jobs x batch-size combination."""

    @settings(max_examples=5, deadline=None)
    @given(st.integers(0, 10_000))
    def test_kernel_jobs_batch_parity(self, seed):
        reference = FunctionMergingPass(
            exploration_threshold=2, **SEED_CONFIG).run(build_module(seed))
        for kernel in KERNELS:
            for jobs, batch_size in ((1, 1), (2, 8), (8, 32)):
                module = build_module(seed)
                report = FunctionMergingPass(
                    exploration_threshold=2, jobs=jobs, batch_size=batch_size,
                    alignment_kernel=kernel).run(module)
                assert decisions(report) == decisions(reference), \
                    (kernel, jobs, batch_size)
                verify_or_raise(module)

    @pytest.mark.parametrize("kernel", [k for k in KERNELS if k])
    def test_kernel_parity_without_cache_and_under_oracle(self, kernel):
        reference = FunctionMergingPass(oracle=True, **SEED_CONFIG).run(
            build_module(3, families=5))
        report = FunctionMergingPass(
            oracle=True, alignment_kernel=kernel,
            alignment_cache=False).run(build_module(3, families=5))
        assert decisions(report) == decisions(reference)


class TestIncrementalCallGraph:
    """Incremental graph maintenance equals from-scratch rebuilds."""

    @staticmethod
    def assert_graph_matches_rebuild(graph, module):
        fresh = CallGraph(module)
        assert graph.callees == fresh.callees
        assert graph.callers == fresh.callers
        assert graph.address_taken == fresh.address_taken
        for name in set(graph.call_sites) | set(fresh.call_sites):
            live = {id(s) for s in graph.call_sites.get(name, ())
                    if s.parent is not None}
            expected = {id(s) for s in fresh.call_sites.get(name, ())}
            assert live == expected, f"call sites of {name} diverged"

    def test_graph_matches_rebuild_after_every_commit(self):
        engine = MergeEngine(exploration_threshold=2)
        scheduler = engine.make_scheduler()
        checked = []

        def check(plan, events):
            self.assert_graph_matches_rebuild(engine._call_graph, engine._module)
            checked.append(events)

        scheduler.on_commit = check
        report = engine.run(build_module(9, families=5), scheduler=scheduler)
        assert report.merge_count >= 2
        assert len(checked) == report.merge_count

    def test_events_name_what_the_commit_touched(self):
        engine = MergeEngine(exploration_threshold=2)
        scheduler = engine.make_scheduler()
        events = []
        scheduler.on_commit = lambda plan, ev: events.append(ev)
        report = engine.run(build_module(11, families=4), scheduler=scheduler)
        assert events
        for record, ev in zip(report.merges, events):
            assert ev.consumed == (record.function1, record.function2)
            assert ev.merged_name == record.merged_name
            assert record.function1 not in ev.rewritten_callers
            assert record.function2 not in ev.rewritten_callers

    @settings(max_examples=10, deadline=None)
    @given(st.integers(0, 10_000))
    def test_incremental_and_rebuild_engines_agree(self, seed):
        incremental = FunctionMergingPass(exploration_threshold=2).run(
            build_module(seed))
        rebuild = FunctionMergingPass(exploration_threshold=2,
                                      incremental_callgraph=False).run(
            build_module(seed))
        assert decisions(incremental) == decisions(rebuild)


class TestOraclePruning:
    """Profit-bound pruning never changes oracle decisions."""

    @settings(max_examples=10, deadline=None)
    @given(st.integers(0, 10_000), st.integers(2, 4))
    def test_prune_parity_on_randomized_modules(self, seed, families):
        pruned = FunctionMergingPass(oracle=True).run(build_module(seed, families))
        unpruned = FunctionMergingPass(oracle=True, oracle_prune=False).run(
            build_module(seed, families))
        assert decisions(pruned) == decisions(unpruned)
        # pruned candidates were skipped, not evaluated
        assert (pruned.candidates_evaluated + pruned.candidates_pruned
                == unpruned.candidates_evaluated)

    def test_pruning_actually_skips_work(self):
        report = FunctionMergingPass(oracle=True).run(build_module(3, families=6))
        assert report.candidates_pruned > 0

    def test_non_oracle_mode_never_prunes(self):
        report = FunctionMergingPass(exploration_threshold=3).run(build_module(3))
        assert report.candidates_pruned == 0

    def test_bounds_track_live_bodies_after_call_site_rewrites(self):
        # soundness invariant: a commit that rewrites a caller's call sites
        # makes its body *more* expensive (the merged callee takes the
        # func_id parameter, pushing the argument list past the register
        # budget); the profit-bound index must be refreshed from the live
        # body or a stale, cheaper vector could prune a candidate the
        # unpruned oracle would have committed
        from repro.core.engine import ProfitBoundIndex
        from repro.ir import IRBuilder
        from repro.ir import types as ty
        from repro.ir import values as vals

        module = Module("stale_bounds")

        def chain(name, opcodes, params=1, callee=None):
            fn = module.create_function(
                name, ty.function_type(ty.I32, [ty.I32] * params))
            builder = IRBuilder(fn.append_block("entry"))
            value = fn.arguments[0]
            for op in opcodes:
                value = builder.binary(op, value, vals.const_int(3))
            if callee is not None:
                args = [value] + list(fn.arguments[1:])
                value = builder.call(callee, args[:len(callee.arguments)])
            builder.ret(value)
            return fn

        # near-identical (one mismatched opcode keeps the func_id parameter)
        # and taking exactly the x86-64 register budget (6 args): the merged
        # function's extra func_id parameter spills the rewritten calls
        budget = MergeEngine().target.free_argument_registers
        e1 = chain("e1", ["add", "mul", "add", "xor", "sub", "add", "mul", "xor"],
                   params=budget)
        chain("e2", ["add", "mul", "add", "xor", "add", "add", "mul", "xor"],
              params=budget)
        caller = chain("m", ["add", "sub", "mul", "xor"], params=budget, callee=e1)

        engine = MergeEngine(oracle=True)
        report = engine.run(module)
        merged = {(m.function1, m.function2): m for m in report.merges}
        assert ("e1", "e2") in merged
        assert "deleted" in merged[("e1", "e2")].dispositions
        assert module.get_function("m") is caller  # still live and indexed

        cached = engine.profit_bounds._entries["m"]
        fresh = ProfitBoundIndex(engine.target)
        fresh.add_function(caller)
        live = fresh._entries["m"]
        assert cached.body_total == live.body_total, \
            "profit bound not refreshed after m's call site was rewritten"
        id_to_op = {fid: op for op, fid in engine.profit_bounds._op_ids.items()}
        reverse = {fid: op for op, fid in fresh._op_ids.items()}
        cached_costs = {id_to_op[fid]: cost
                        for fid, cost in zip(cached.op_ids, cached.op_costs)}
        live_costs = {reverse[fid]: cost
                      for fid, cost in zip(live.op_ids, live.op_costs)}
        assert cached_costs == live_costs


class TestExecutors:
    def test_auto_picks_serial_for_one_job(self):
        executor = make_executor("auto", 1)
        assert executor.jobs == 1
        assert executor.map(lambda x: x * 2, [1, 2, 3]) == [2, 4, 6]

    def test_thread_executor_maps_in_order(self):
        executor = make_executor("thread", 4)
        try:
            assert executor.map(lambda x: x * x, list(range(20))) == \
                [x * x for x in range(20)]
        finally:
            executor.close()

    def test_process_executor_offloads_and_maps_in_process(self):
        # planning (map) stays in the calling process - plans hold live IR -
        # while run_tasks is the offload seam
        executor = make_executor("process", 2)
        try:
            assert executor.offloads_alignment
            assert executor.jobs == 2
            local = object()
            assert executor.map(lambda name: (name, local),
                                ["a", "b"]) == [("a", local), ("b", local)]
        finally:
            executor.close()

    def test_unknown_executor_rejected(self):
        with pytest.raises(ValueError):
            make_executor("gpu", 2)
        with pytest.raises(ValueError):
            MergeEngine(executor="gpu", jobs=2).run(Module("empty"))


class TestPlanningErrors:
    """A planner exception names the worklist entry it came from, and the
    thread pool is still shut down through the engine's finally path."""

    class _ExplodingSearcher:
        """Delegating searcher that raises when ranking one specific name."""

        def __init__(self, inner, poison):
            self._inner = inner
            self._poison = poison

        def rank_candidates(self, name, limit=None):
            if name == self._poison:
                raise KeyError("boom")
            return self._inner.rank_candidates(name, limit)

        def __getattr__(self, attribute):
            return getattr(self._inner, attribute)

    def _poisoned_engine(self, poison, **kwargs):
        from repro.core.engine.search import make_searcher
        searcher = self._ExplodingSearcher(
            make_searcher("indexed", exploration_threshold=2), poison)
        return MergeEngine(exploration_threshold=2, searcher=searcher, **kwargs)

    def test_error_names_the_entry_under_thread_executor(self):
        from repro.core.engine import PlanningError
        module = build_module(5)
        poison = sorted(f.name for f in module.defined_functions())[3]
        engine = self._poisoned_engine(poison, jobs=2, batch_size=8)
        schedulers = []
        original = engine.make_scheduler
        engine.make_scheduler = lambda: schedulers.append(original()) or schedulers[-1]
        with pytest.raises(PlanningError, match=repr(poison)) as excinfo:
            engine.run(module)
        assert isinstance(excinfo.value.__cause__, KeyError)
        assert excinfo.value.entry == poison
        # the engine's finally path closed the pool despite the error
        # (shutdown flag name differs between thread and process pools,
        # and the ambient REPRO_ENGINE_EXECUTOR may select either)
        [scheduler] = schedulers
        pool = scheduler.executor._pool
        assert (getattr(pool, "_shutdown", False)
                or getattr(pool, "_shutdown_thread", False))

    def test_error_names_the_entry_serially_too(self):
        from repro.core.engine import PlanningError
        module = build_module(5)
        poison = sorted(f.name for f in module.defined_functions())[0]
        engine = self._poisoned_engine(poison, jobs=1)
        with pytest.raises(PlanningError, match=repr(poison)):
            engine.run(module)

    def test_planning_error_is_not_double_wrapped(self):
        from collections import deque
        from repro.core.engine import MergeScheduler, PlanningError
        from repro.core.engine.scheduler import SerialExecutor

        def plan(name):
            raise PlanningError(name, ValueError("inner"))

        scheduler = MergeScheduler(
            plan=plan, commit=None, query_key=None, absorb=None,
            executor=SerialExecutor())
        with pytest.raises(PlanningError, match="'only'") as excinfo:
            scheduler.run(deque(["only"]), {"only"})
        assert excinfo.value.entry == "only"


class TestCacheAwarePlanning:
    """Content-duplicate batch entries are planned in a second wave, so the
    duplicate pairs' DPs run once and the followers hit the cache."""

    @staticmethod
    def clone_heavy_module(seed=7, families=6):
        return build_module(seed, families=families, clones=3)

    def test_duplicates_deferred_and_never_recomputed(self):
        # executor pinned to thread: under the process offload, worker
        # results are stored without a counted miss, so the miss==entries
        # invariant below is specific to in-process planning
        report = FunctionMergingPass(
            exploration_threshold=2, jobs=4, executor="thread",
            batch_size=64).run(self.clone_heavy_module())
        stats = report.scheduler_stats
        assert stats["content_dup_deferred"] > 0
        # the guarantee (not luck): every miss is a distinct content key,
        # i.e. no alignment DP ever ran twice within the run
        assert stats["align_cache_misses"] == (stats["align_cache_entries"]
                                               + stats["align_cache_evictions"])

    def test_wave_planning_keeps_decisions_identical(self):
        reference = FunctionMergingPass(
            exploration_threshold=2, **SEED_CONFIG).run(self.clone_heavy_module())
        for jobs, batch_size in ((2, 16), (4, 64)):
            report = FunctionMergingPass(
                exploration_threshold=2, jobs=jobs,
                batch_size=batch_size).run(self.clone_heavy_module())
            assert decisions(report) == decisions(reference)

    def test_no_cache_disables_content_grouping(self):
        engine = MergeEngine(exploration_threshold=2, jobs=2, batch_size=16,
                             alignment_cache=False)
        scheduler = engine.make_scheduler()
        try:
            assert scheduler.content_key is None
        finally:
            scheduler.close()
        report = engine.run(self.clone_heavy_module())
        assert report.scheduler_stats["content_dup_deferred"] == 0
