"""Tests for the content-addressed alignment cache.

Covers the serialization round-trip (ops <-> entries), LRU bookkeeping,
content addressing across distinct functions, the invalidation story (a
rewritten function gets a fresh linearization whose digest can never hit a
stale entry), the engine-level stats surfaced in
``MergeReport.scheduler_stats`` and decision parity with the cache off.
"""

import random

import pytest

from repro.core import FunctionMergingPass, MergeEngine, ScoringScheme
from repro.core.alignment import needleman_wunsch_keyed
from repro.core.engine.align_cache import AlignmentCache, ops_of, rehydrate
from repro.core.engine.stages import AlignmentStage, LinearizeStage
from repro.ir import IRBuilder, Module
from repro.ir import types as ty
from repro.ir import values as vals
from repro.workloads import FamilySpec, FunctionSpec, make_family


def build_module(seed=7, families=5):
    module = Module(f"cache_{seed}")
    rng = random.Random(seed)
    for index in range(families):
        spec = FunctionSpec(
            f"fam{index}",
            num_blocks=2 + (index + seed) % 3,
            instructions_per_block=4 + ((index + seed) % 4) * 2,
            call_ratio=0.3, memory_ratio=0.2,
            seed=100 + 13 * seed + index)
        # two identical clones: after the first identical pair merges, the
        # merged function (same body content) re-aligns against the second
        # clone - a content-addressed hit even in a serial, conflict-free run
        make_family(module, spec,
                    FamilySpec(identical=2, structural=2, partial=1), rng)
    return module


def decisions(report):
    return [(m.function1, m.function2, m.merged_name, m.rank_position, m.delta)
            for m in report.merges]


def entry_pairs(result):
    return [(e.left, e.right) for e in result.entries]


def make_chain(module, name, opcodes):
    fn = module.create_function(name, ty.function_type(ty.I32, [ty.I32]))
    builder = IRBuilder(fn.append_block("entry"))
    value = fn.arguments[0]
    for op in opcodes:
        value = builder.binary(op, value, vals.const_int(3))
    builder.ret(value)
    return fn


# -- serialization round trip -------------------------------------------------

def test_ops_rehydrate_round_trip():
    seq1, seq2 = "ABCAD", "ABDAX"
    keys1, keys2 = [ord(c) for c in seq1], [ord(c) for c in seq2]
    result = needleman_wunsch_keyed(seq1, seq2, keys1, keys2)
    ops = ops_of(result.entries)
    assert set(ops) <= {"m", "l", "r"}
    back = rehydrate(ops, result.score, seq1, seq2)
    assert back.score == result.score
    assert entry_pairs(back) == entry_pairs(result)


def test_rehydrate_rejects_mismatched_sequences():
    with pytest.raises(ValueError, match="does not cover"):
        rehydrate("ml", 1, "ABC", "A")


# -- LRU bookkeeping ----------------------------------------------------------

def test_lru_eviction_and_stats():
    cache = AlignmentCache(capacity=2)
    cache.put(("a",), "mmm", 3)
    cache.put(("b",), "ml", 1)
    assert cache.get(("a",)) == ("mmm", 3)   # refreshes 'a'
    cache.put(("c",), "r", -1)               # evicts 'b' (LRU)
    assert cache.get(("b",)) is None
    assert cache.get(("a",)) is not None
    assert cache.get(("c",)) is not None
    assert cache.evictions == 1
    stats = cache.stats_dict()
    assert stats["align_cache_hits"] == 3
    assert stats["align_cache_misses"] == 1
    assert stats["align_cache_entries"] == 2
    assert stats["align_cache_bytes"] > 0
    cache.clear()
    assert len(cache) == 0 and cache.hits == 0 and cache.stats_dict()[
        "align_cache_bytes"] == 0


# -- stage-level behaviour ----------------------------------------------------

class TestAlignmentStageCache:
    def setup_method(self):
        self.module = Module("stage_cache")
        self.linearize = LinearizeStage()
        self.cache = AlignmentCache()
        self.stage = AlignmentStage(cache=self.cache)
        self.plain = AlignmentStage()

    def lin(self, fn):
        return self.linearize.get(fn)

    def test_repeat_alignment_hits_and_is_bit_identical(self):
        f = make_chain(self.module, "f", ["add", "mul", "xor", "sub"])
        g = make_chain(self.module, "g", ["add", "mul", "shl", "sub"])
        lf, lg = self.lin(f), self.lin(g)
        first = self.stage.align_pair(lf, lg)
        assert self.cache.misses == 1 and self.cache.hits == 0
        second = self.stage.align_pair(lf, lg)
        assert self.cache.hits == 1
        want = self.plain.align_pair(lf, lg)
        for got in (first, second):
            assert got.score == want.score
            assert entry_pairs(got) == entry_pairs(want)

    def test_content_addressing_hits_across_distinct_functions(self):
        # h is a textual clone of f: different function, same key sequence
        f = make_chain(self.module, "f", ["add", "mul", "xor", "sub"])
        h = make_chain(self.module, "h", ["add", "mul", "xor", "sub"])
        g = make_chain(self.module, "g", ["add", "mul", "shl", "sub"])
        assert self.lin(f).content_digest() == self.lin(h).content_digest()
        self.stage.align_pair(self.lin(f), self.lin(g))
        result = self.stage.align_pair(self.lin(h), self.lin(g))
        assert self.cache.hits == 1
        want = self.plain.align_pair(self.lin(h), self.lin(g))
        assert entry_pairs(result) == entry_pairs(want)

    def test_rewritten_function_cannot_hit_stale_entry(self):
        # the invalidation contract: after a commit rewrites a function,
        # LinearizeStage.invalidate drops its linearization; the fresh one
        # has a different digest, so the old cache entry is unreachable
        f = make_chain(self.module, "f", ["add", "mul", "xor", "sub"])
        g = make_chain(self.module, "g", ["add", "mul", "shl", "sub"])
        self.stage.align_pair(self.lin(f), self.lin(g))
        old_digest = self.lin(f).content_digest()

        # rewrite f's body (what apply_merge does to callers) + invalidate
        block = f.entry_block
        builder = IRBuilder(block)
        ret = block.instructions[-1]
        block.remove(ret)
        extra = builder.binary("or", f.arguments[0], vals.const_int(7))
        block.append(ret)
        self.linearize.invalidate("f")

        fresh = self.lin(f)
        assert fresh.content_digest() != old_digest
        result = self.stage.align_pair(fresh, self.lin(g))
        assert self.cache.hits == 0 and self.cache.misses == 2
        want = self.plain.align_pair(fresh, self.lin(g))
        assert result.score == want.score
        assert entry_pairs(result) == entry_pairs(want)
        assert any(e.left is not None and e.left.is_instruction
                   and e.left.value is extra for e in result.entries)

    def test_scoring_scheme_is_part_of_the_key(self):
        f = make_chain(self.module, "f", ["add", "mul"])
        g = make_chain(self.module, "g", ["add", "shl"])
        other = AlignmentStage(scoring=ScoringScheme(match=2, mismatch=-3,
                                                     gap=-2),
                               cache=self.cache)
        self.stage.align_pair(self.lin(f), self.lin(g))
        other.align_pair(self.lin(f), self.lin(g))
        assert self.cache.hits == 0 and self.cache.misses == 2


# -- engine-level behaviour ---------------------------------------------------

class TestEngineCache:
    def test_stats_surface_in_scheduler_stats(self):
        report = FunctionMergingPass(exploration_threshold=2).run(build_module())
        stats = report.scheduler_stats
        for key in ("align_cache_hits", "align_cache_misses",
                    "align_cache_bytes", "align_cache_entries",
                    "align_cache_evictions"):
            assert key in stats
        assert stats["align_cache_misses"] > 0
        # families contain identical clones -> content hits even serially
        assert stats["align_cache_hits"] > 0

    def test_conflict_replans_hit_the_cache(self):
        # one big batch: every commit conflicts the rest of the batch, and
        # each replan re-aligns pairs whose bodies did not change
        report = FunctionMergingPass(exploration_threshold=2, jobs=1,
                                     executor="thread",
                                     batch_size=64).run(build_module(11, 6))
        assert report.scheduler_stats["replans"] > 0
        assert report.scheduler_stats["align_cache_hits"] > 0

    def test_cache_can_be_disabled(self):
        engine = MergeEngine(exploration_threshold=2, alignment_cache=False)
        assert engine.align_cache is None
        report = engine.run(build_module())
        assert "align_cache_hits" not in report.scheduler_stats

    def test_capacity_knob(self):
        engine = MergeEngine(alignment_cache=7)
        assert engine.align_cache.capacity == 7

    def test_decisions_identical_with_and_without_cache(self):
        for seed in (3, 9, 42):
            with_cache = FunctionMergingPass(
                exploration_threshold=2).run(build_module(seed))
            without = FunctionMergingPass(
                exploration_threshold=2,
                alignment_cache=False).run(build_module(seed))
            assert decisions(with_cache) == decisions(without)

    def test_cache_resets_between_runs(self):
        engine = MergeEngine(exploration_threshold=2)
        first = engine.run(build_module(5))
        second = engine.run(build_module(5))
        # identical deterministic module, fresh counters: the second run's
        # stats equal the first's instead of accumulating on top of them
        keys = ("align_cache_hits", "align_cache_misses", "align_cache_bytes")
        assert {k: first.scheduler_stats[k] for k in keys} == \
            {k: second.scheduler_stats[k] for k in keys}
