"""Tests for incremental engine sessions: random edit scripts replayed
through a warm :class:`MergeSession` must be bit-identical to a cold
``engine.run()`` on the edited module - decisions, counters, call graph,
and printed function bodies - across executors and kernels; plus the
failure-recovery, plan/linearization-reuse, delta-report, and edit
validation behaviour."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (MergeEngine, MergeSession, ModuleEdit, apply_edit,
                        numpy_available)
from repro.core.engine import DirtySet, PlanningError
from repro.ir import IRBuilder, Module, verify_or_raise
from repro.ir import types as ty
from repro.ir import values as vals
from repro.ir.callgraph import CallGraph
from repro.ir.clone import clone_function_detached
from repro.ir.printer import function_to_str
from repro.workloads import FamilySpec, FunctionSpec, make_family


def build_module(seed=7, families=4, clones=2):
    """Deterministic multi-family module population (same as the scheduler
    tests, so the workloads exercise real merge/conflict traffic)."""
    module = Module(f"sess_{seed}")
    rng = random.Random(seed)
    for index in range(families):
        spec = FunctionSpec(
            f"fam{index}",
            num_blocks=2 + (index + seed) % 3,
            instructions_per_block=4 + ((index + seed) % 4) * 2,
            call_ratio=0.3, memory_ratio=0.2,
            returns_float=bool((index + seed) % 5 == 1),
            seed=100 + 13 * seed + index)
        make_family(module, spec,
                    FamilySpec(identical=1, structural=clones, partial=1), rng)
    return module


def donor_pool(seed, count=3):
    """Detached functions harvested from sibling modules, used as edit
    payloads (adds and same-signature replacements)."""
    pool = []
    for offset in range(count):
        for fn in build_module(seed + 100 + offset).functions:
            pool.append(fn)
    return pool


def make_edits(rng, sim, donors, tag, count=2):
    """Generate one update's edit script against the simulated name/type
    state ``sim`` (mutated in place to stay consistent across updates)."""
    edits = []
    for index in range(count):
        kind = rng.choice(("add", "remove", "replace"))
        if kind == "replace" and sim:
            name = rng.choice(sorted(sim))
            matches = [d for d in donors
                       if d.function_type == sim[name] and d.name != name]
            if matches:
                donor = matches[rng.randrange(len(matches))]
                edits.append(ModuleEdit.replace(
                    clone_function_detached(donor, name=name)))
                continue
            kind = "add"  # no same-signature donor: fall through
        if kind == "remove" and sim:
            name = rng.choice(sorted(sim))
            edits.append(ModuleEdit.remove(name))
            del sim[name]
            continue
        donor = donors[rng.randrange(len(donors))]
        name = f"ext_{tag}_{index}"
        while name in sim:
            name += "x"
        edits.append(ModuleEdit.add(clone_function_detached(donor, name=name)))
        sim[name] = donor.function_type
    return edits


def cold_rerun(seed, history, **engine_kwargs):
    """From-scratch ground truth: rebuild the seed module, apply every edit
    so far, run a fresh engine.  Returns (module, report)."""
    module = build_module(seed)
    for edit in history:
        apply_edit(module, edit)
    report = MergeEngine(exploration_threshold=2, **engine_kwargs).run(module)
    return module, report


def assert_graph_matches_rebuild(graph, module):
    fresh = CallGraph(module)
    assert graph.callees == fresh.callees
    assert graph.callers == fresh.callers
    assert graph.address_taken == fresh.address_taken
    for name in set(graph.call_sites) | set(fresh.call_sites):
        live = {id(s) for s in graph.call_sites.get(name, ())
                if s.parent is not None}
        expected = {id(s) for s in fresh.call_sites.get(name, ())}
        assert live == expected, f"call sites of {name} diverged"


def assert_session_matches_cold(session, seed, history, **engine_kwargs):
    """The full bit-identity contract: decisions, per-run counters,
    scheduler accounting, call graph, verifier, and printed bodies."""
    cold_module, cold = cold_rerun(seed, history, **engine_kwargs)
    warm = session.report
    assert warm.decision_keys() == cold.decision_keys()
    assert warm.candidates_evaluated == cold.candidates_evaluated
    assert warm.codegen_failures == cold.codegen_failures
    assert warm.candidates_pruned == cold.candidates_pruned
    assert warm.stale_entries == cold.stale_entries
    assert warm.functions_considered == cold.functions_considered
    for key in ("planned", "committed", "conflicts", "replans"):
        assert warm.scheduler_stats[key] == cold.scheduler_stats[key], key
    verify_or_raise(session.module)
    assert_graph_matches_rebuild(session.graph, session.module)
    warm_names = sorted(f.name for f in session.module.functions)
    cold_names = sorted(f.name for f in cold_module.functions)
    assert warm_names == cold_names
    for name in warm_names:
        assert (function_to_str(session.module.get_function(name))
                == function_to_str(cold_module.get_function(name))), name


def run_session_script(seed, updates=3, edits_per_update=2, **engine_kwargs):
    """Drive a session through ``updates`` random edit scripts, checking
    full parity with a cold rerun after open and after every update."""
    rng = random.Random(seed * 7919 + 13)
    donors = donor_pool(seed)
    module = build_module(seed)
    sim = {fn.name: fn.function_type for fn in module.functions}
    engine = MergeEngine(exploration_threshold=2, **engine_kwargs)
    history = []
    with MergeSession(engine, module) as session:
        assert_session_matches_cold(session, seed, history, **engine_kwargs)
        for update in range(updates):
            edits = make_edits(rng, sim, donors, f"u{update}",
                               count=edits_per_update)
            report = session.update(edits)
            assert report.edits == len(edits)
            history.extend(edits)
            assert_session_matches_cold(session, seed, history,
                                        **engine_kwargs)
    assert session._executor.closed


class TestSessionParity:
    """Warm incremental updates are bit-identical to cold full reruns."""

    @settings(max_examples=6, deadline=None)
    @given(st.integers(0, 10_000))
    def test_random_edit_scripts_serial(self, seed):
        run_session_script(seed)

    @settings(max_examples=3, deadline=None)
    @given(st.integers(0, 10_000))
    def test_random_edit_scripts_thread_executor(self, seed):
        run_session_script(seed, jobs=4, executor="thread", batch_size=16)

    def test_random_edit_scripts_process_executor(self):
        run_session_script(7, jobs=2, executor="process", batch_size=8)

    def test_random_edit_scripts_under_oracle(self):
        run_session_script(5, oracle=True)

    @pytest.mark.parametrize("kernel", ["nw-banded"] + (
        ["nw-numpy", "nw-wavefront-numpy"] if numpy_available() else []))
    def test_random_edit_scripts_per_kernel(self, kernel):
        run_session_script(3, updates=2, alignment_kernel=kernel)

    def test_open_matches_cold_run(self):
        module = build_module(11)
        engine = MergeEngine(exploration_threshold=2)
        with MergeSession(engine, module) as session:
            cold_module, cold = cold_rerun(11, [])
            assert session.report.decision_keys() == cold.decision_keys()
            assert (session.report.candidates_evaluated
                    == cold.candidates_evaluated)

    def test_noop_update_is_stable(self):
        module = build_module(9)
        engine = MergeEngine(exploration_threshold=2)
        with MergeSession(engine, module) as session:
            before = session.report.decision_keys()
            report = session.update([])
            assert session.report.decision_keys() == before
            assert report.edits == 0
            assert report.merges_added == []
            assert report.merges_retired == []
            assert report.merges_kept == len(before)
            assert_session_matches_cold(session, 9, [])


class TestSessionRecovery:
    """A failed update tears the executor down; the next update recovers
    with a fresh pool and converges to the cold post-edit state."""

    def _crashing_session(self, seed=9):
        module = build_module(seed)
        engine = MergeEngine(exploration_threshold=2, jobs=2,
                             executor="thread", batch_size=8)
        session = MergeSession(engine, module)
        real_plan = engine.plan_entry
        poison = sorted(session._source_fps)[len(session._source_fps) // 2]

        def exploding(name):
            if name == poison:
                raise KeyError("boom")
            return real_plan(name)

        engine.plan_entry = exploding
        return session, engine, real_plan

    def test_failed_update_closes_pool_and_recovers(self):
        seed = 9
        session, engine, real_plan = self._crashing_session(seed)
        donor = build_module(seed + 100).functions[0]
        edit = ModuleEdit.add(clone_function_detached(donor,
                                                      name="post_crash_fn"))
        with pytest.raises(PlanningError):
            session.update([edit])
        assert session._executor.closed
        # the edit landed in the shadow before the replay died, and some
        # merges may have re-committed: the next update must roll that
        # partial state back and land exactly on the cold post-edit answer
        engine.plan_entry = real_plan
        session.update([])
        assert not session._executor.closed
        assert_session_matches_cold(session, seed, [edit],
                                    jobs=2, executor="thread", batch_size=8)
        # and the session stays healthy for further edits
        donor2 = build_module(seed + 101).functions[1]
        edit2 = ModuleEdit.add(clone_function_detached(donor2,
                                                       name="post_crash_fn2"))
        session.update([edit2])
        assert_session_matches_cold(session, seed, [edit, edit2],
                                    jobs=2, executor="thread", batch_size=8)
        session.close()
        assert session._executor.closed

    def test_failed_validation_mutates_nothing(self):
        module = build_module(9)
        engine = MergeEngine(exploration_threshold=2)
        with MergeSession(engine, module) as session:
            before = session.report.decision_keys()
            donor = build_module(109).functions[0]
            good = ModuleEdit.add(clone_function_detached(donor, name="ok_fn"))
            bad = ModuleEdit.remove("no_such_function")
            with pytest.raises(ValueError):
                session.update([good, bad])
            # the whole script was rejected up front: no partial effects
            assert session.report.decision_keys() == before
            assert session.module.get_function("ok_fn") is None
            session.update([])
            assert session.report.decision_keys() == before


def _chain(module, name, opcodes, callee=None):
    """Straight-line i32 chain (the oracle-pruning test idiom)."""
    fn = module.create_function(name, ty.function_type(ty.I32, [ty.I32]))
    builder = IRBuilder(fn.append_block("entry"))
    value = fn.arguments[0]
    for op in opcodes:
        value = builder.binary(op, value, vals.const_int(3))
    if callee is not None:
        value = builder.call(callee, [value])
    builder.ret(value)
    return fn


class TestSessionReuse:
    """Plan memoization and cross-update linearization reuse, with the
    hit/miss counters surfaced through ``scheduler_stats``."""

    def test_noop_update_reuses_decisionless_plans(self):
        module = build_module(9)
        engine = MergeEngine(exploration_threshold=2)
        with MergeSession(engine, module) as session:
            report = session.update([])
            assert report.plans_reused > 0
            # merge decisions are never memoized: each one is replanned and
            # recommitted so divergence is detected, not assumed away
            assert report.functions_replanned >= session.report.merge_count
            stats = report.scheduler_stats
            assert stats["plans_reused"] == report.plans_reused
            assert stats["functions_replanned"] == report.functions_replanned
            assert 0.0 < report.plan_reuse_rate <= 1.0

    def test_linearizations_survive_across_updates(self):
        # an evaluated-but-unprofitable pair is never rolled back, so its
        # cached linearizations outlive the update cycle; dirtying the pair
        # via a new caller forces a fresh plan that must hit the cache
        module = Module("reuse")
        _chain(module, "u1", ["add", "mul", "xor", "sub"])
        _chain(module, "u2", ["sub", "xor", "mul", "add"])
        engine = MergeEngine(exploration_threshold=2)
        with MergeSession(engine, module) as session:
            assert session.report.merge_count == 0
            assert session.report.candidates_evaluated == 2
            open_stats = session.report.scheduler_stats
            assert open_stats["linearize_cache_misses"] == 2
            donor_mod = Module("donor")
            u1_ref = donor_mod.create_function(
                "u1", ty.function_type(ty.I32, [ty.I32]))
            caller = _chain(donor_mod, "caller_c", ["add"], callee=u1_ref)
            report = session.update(
                [ModuleEdit.add(clone_function_detached(caller))])
            assert report.linearize_hits > 0
            stats = report.scheduler_stats
            assert stats["linearize_cache_hits"] == report.linearize_hits
            assert stats["linearize_cache_misses"] == report.linearize_misses
            assert "linearize_stale_evicted" in stats
            assert 0.0 < report.linearize_reuse_rate <= 1.0

    def test_reuse_counters_present_for_every_update(self):
        module = build_module(5)
        engine = MergeEngine(exploration_threshold=2)
        with MergeSession(engine, module) as session:
            donor = build_module(105).functions[0]
            report = session.update(
                [ModuleEdit.add(clone_function_detached(donor, name="x_fn"))])
            for key in ("plans_reused", "functions_replanned",
                        "linearize_cache_hits", "linearize_cache_misses",
                        "linearize_stale_evicted", "rank_reuse_hits"):
                assert key in report.scheduler_stats, key


class TestSessionUpdateReport:
    """The update report is a coherent delta against the previous state."""

    def test_added_retired_kept_partition_the_decisions(self):
        seed = 3
        rng = random.Random(1234)
        donors = donor_pool(seed)
        module = build_module(seed)
        sim = {fn.name: fn.function_type for fn in module.functions}
        engine = MergeEngine(exploration_threshold=2)
        history = []
        with MergeSession(engine, module) as session:
            previous = set(session.report.decision_keys())
            for update in range(3):
                edits = make_edits(rng, sim, donors, f"r{update}")
                report = session.update(edits)
                history.extend(edits)
                current = set(session.report.decision_keys())
                added = {session.report.record_key(m)
                         for m in report.merges_added}
                retired = set(report.merges_retired)
                assert added == current - previous
                assert retired == previous - current
                assert report.merges_kept == len(previous & current)
                assert (report.merges_kept + len(report.merges_added)
                        == session.report.merge_count)
                assert report.merges_changed == len(added) + len(retired)
                assert report.dirty_functions > 0
                assert report.update_seconds > 0.0
                previous = current

    def test_candidates_evaluated_counts_fresh_planning_only(self):
        module = build_module(9)
        engine = MergeEngine(exploration_threshold=2)
        with MergeSession(engine, module) as session:
            full = session.report.candidates_evaluated
            report = session.update([])
            # memoized plans contribute nothing: the delta view counts only
            # pairs the dirty slice actually re-evaluated
            if report.plans_reused > 0 and full > 0:
                assert report.candidates_evaluated < full
            # ...while the full-module report still matches a cold rerun
            assert session.report.candidates_evaluated == full

    def test_summary_mentions_the_delta(self):
        module = build_module(9)
        engine = MergeEngine(exploration_threshold=2)
        with MergeSession(engine, module) as session:
            report = session.update([])
            text = report.summary()
            assert "0 edit(s)" in text
            assert "reuse" in text


class TestEditValidation:
    """Edit scripts are checked as a whole before anything mutates."""

    def _session(self, seed=9):
        return MergeSession(MergeEngine(exploration_threshold=2),
                            build_module(seed))

    def test_duplicate_add_rejected(self):
        with self._session() as session:
            existing = session.module.functions[0]
            donor = clone_function_detached(
                build_module(109).functions[0], name="dup_fn")
            with pytest.raises(ValueError, match="already exists"):
                session.update([ModuleEdit.add(donor),
                                ModuleEdit.add(clone_function_detached(
                                    donor, name="dup_fn"))])

    def test_missing_remove_and_replace_targets_rejected(self):
        with self._session() as session:
            with pytest.raises(ValueError, match="does not exist"):
                session.update([ModuleEdit.remove("ghost")])
            donor = clone_function_detached(
                build_module(109).functions[0], name="ghost")
            with pytest.raises(ValueError, match="does not exist"):
                session.update([ModuleEdit.replace(donor)])

    def test_replace_signature_mismatch_rejected(self):
        with self._session() as session:
            target = session._shadow.functions[0]
            mismatched = None
            for fn in build_module(109).functions:
                if fn.function_type != target.function_type:
                    mismatched = fn
                    break
            assert mismatched is not None
            with pytest.raises(ValueError, match="signature mismatch"):
                session.update([ModuleEdit.replace(clone_function_detached(
                    mismatched, name=target.name))])

    def test_script_is_validated_in_order(self):
        # remove frees the name, so a subsequent same-name add is legal
        with self._session() as session:
            name = session._shadow.functions[0].name
            donor = session._shadow.functions[1]
            session.update([
                ModuleEdit.remove(name),
                ModuleEdit.add(clone_function_detached(donor, name=name))])
            assert session.module.get_function(name) is not None

    def test_non_edit_objects_rejected(self):
        with self._session() as session:
            with pytest.raises(TypeError):
                session.update(["remove fam0"])

    def test_module_edit_constructor_validation(self):
        with pytest.raises(ValueError, match="unknown edit kind"):
            ModuleEdit(kind="rename", name="x")
        with pytest.raises(ValueError, match="needs a function"):
            ModuleEdit(kind="add", name="x")
        with pytest.raises(ValueError, match="needs a function"):
            ModuleEdit(kind="replace", name="x")
        assert ModuleEdit.remove("x").function is None

    def test_session_requires_order_preserving_searcher(self):
        with pytest.raises(ValueError, match="order-preserving"):
            MergeSession(MergeEngine(searcher="linear"), Module("m"))


class TestApplyEdit:
    """The shared cold-path edit semantics ``MergeSession`` mirrors."""

    def test_add_clones_the_payload(self):
        module = Module("m")
        donor_mod = Module("d")
        donor = _chain(donor_mod, "f", ["add", "mul"])
        detached = clone_function_detached(donor, name="g")
        added = apply_edit(module, ModuleEdit.add(detached))
        assert added is module.get_function("g")
        assert added is not detached
        # the payload stays detached and reusable
        module2 = Module("m2")
        again = apply_edit(module2, ModuleEdit.add(detached))
        assert function_to_str(again) == function_to_str(added)
        verify_or_raise(module)
        verify_or_raise(module2)

    def test_add_resolves_self_recursion(self):
        donor_mod = Module("d")
        fn = donor_mod.create_function("r", ty.function_type(ty.I32, [ty.I32]))
        builder = IRBuilder(fn.append_block("entry"))
        builder.ret(builder.call(fn, [fn.arguments[0]]))
        module = Module("m")
        added = apply_edit(module, ModuleEdit.add(
            clone_function_detached(fn, name="r")))
        callees = {op for block in added.blocks
                   for inst in block.instructions
                   for op in inst.operands if hasattr(op, "blocks")}
        assert callees == {added}

    def test_remove_leaves_callers_dangling_like_a_real_frontend(self):
        module = Module("m")
        callee = _chain(module, "callee", ["add"])
        caller = _chain(module, "caller", ["mul"], callee=callee)
        apply_edit(module, ModuleEdit.remove("callee"))
        assert module.get_function("callee") is None
        assert module.get_function("caller") is caller

    def test_replace_swaps_the_body_in_place(self):
        module = Module("m")
        original = _chain(module, "f", ["add"])
        donor_mod = Module("d")
        replacement = _chain(donor_mod, "f", ["mul", "xor"])
        result = apply_edit(module, ModuleEdit.replace(
            clone_function_detached(replacement)))
        assert result is original  # same object: callers keep their refs
        assert "mul" in function_to_str(original)
        verify_or_raise(module)


class TestDirtySet:
    def test_basic_membership(self):
        dirty = DirtySet()
        assert len(dirty) == 0
        dirty.add("a")
        dirty.update(["b", "c"])
        assert "a" in dirty and "b" in dirty
        assert "z" not in dirty
        assert sorted(dirty) == ["a", "b", "c"]
        dirty.clear()
        assert len(dirty) == 0


class TestSessionLifecycle:
    """Deterministic executor release: ``close()`` frees an owned pool,
    borrowed keep-alive executors survive, factories re-lease on demand."""

    def _engine(self, **kwargs):
        kwargs.setdefault("exploration_threshold", 2)
        return MergeEngine(**kwargs)

    def test_close_frees_the_owned_executor(self):
        from repro.core.engine.scheduler import make_executor  # noqa: F401
        session = MergeSession(self._engine(executor="thread", jobs=2),
                               build_module(3))
        executor = session._executor
        assert not executor.closed
        session.close()
        assert session.closed
        assert executor.closed

    def test_close_is_idempotent_and_update_after_close_raises(self):
        session = MergeSession(self._engine(), build_module(3))
        session.close()
        session.close()  # second close is a no-op
        with pytest.raises(RuntimeError, match="closed"):
            session.update([])

    def test_context_manager_closes(self):
        with MergeSession(self._engine(executor="thread", jobs=2),
                          build_module(3)) as session:
            executor = session._executor
            assert session.report is not None
        assert session.closed
        assert executor.closed

    def test_borrowed_keep_alive_executor_survives_close(self):
        from repro.core.engine.scheduler import make_executor
        executor = make_executor("thread", 2)
        executor.keep_alive = True
        try:
            session = MergeSession(self._engine(jobs=2), build_module(3),
                                   executor=executor)
            assert session._executor is executor
            session.update([])
            session.close()
            assert not executor.closed  # the owner decides its lifetime
        finally:
            executor.close()

    def test_closed_injected_executor_falls_back_to_a_fresh_one(self):
        from repro.core.engine.scheduler import make_executor
        stale = make_executor("thread", 2)
        stale.close()
        session = MergeSession(self._engine(executor="thread", jobs=2),
                               build_module(3), executor=stale)
        assert session._executor is not stale
        assert not session._executor.closed
        session.close()

    def test_factory_releases_on_recovery(self):
        from repro.core.engine.scheduler import make_executor
        built = []

        def lease():
            executor = make_executor("serial", None)
            built.append(executor)
            return executor

        session = MergeSession(self._engine(), build_module(3),
                               executor=lease)
        assert built and session._executor is built[0]
        # simulate the daemon recycling the shared pool out from under the
        # session: the next update re-leases through the factory
        built[0].closed = True
        session.update([])
        assert session._executor is built[-1]
        assert len(built) == 2
        session.close()
