"""Tests for the out-of-process alignment offload and adaptive batching.

Covers the pure-data task codec (canonical key bytes -> local interner ids,
property-tested against live-interner alignments, pickle round trip), the
process executor (parity with the serial engine across executors x jobs x
cache states, including a pinned pure-Python worker leg), executor
lifecycle on failure (a killed worker surfaces as ``PlanningError`` naming
the entry and the pool is shut down on every branch), and the adaptive
batch sizer's determinism (same stats stream -> same trace -> same
decisions).
"""

import os
import pickle
import random
import signal
import time

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (FunctionMergingPass, MergeEngine,
                        decode_canonical_keys, needleman_wunsch_keyed,
                        numpy_available, ops_string)
from repro.core.engine import (AdaptiveBatchSizer, AlignmentTask,
                               MergeScheduler, PlanningError,
                               ProcessExecutor, SerialExecutor, TaskFailure,
                               make_executor)
from repro.core.engine.offload import solve_alignment_task
from repro.core.engine.plan import PendingAlignment
from repro.core.engine.scheduler import ENGINE_EXECUTOR_ENV
from repro.core.engine.stages import LinearizeStage
from repro.ir import Module, verify_or_raise
from repro.workloads import FamilySpec, FunctionSpec, make_family


def build_module(seed=7, families=4, clones=2):
    module = Module(f"offload_{seed}")
    rng = random.Random(seed)
    for index in range(families):
        spec = FunctionSpec(
            f"fam{index}",
            num_blocks=2 + (index + seed) % 3,
            instructions_per_block=4 + ((index + seed) % 4) * 2,
            call_ratio=0.3, memory_ratio=0.2,
            returns_float=bool((index + seed) % 5 == 1),
            seed=100 + 13 * seed + index)
        make_family(module, spec,
                    FamilySpec(identical=1, structural=clones, partial=1), rng)
    return module


def decisions(report):
    return [(m.function1, m.function2, m.merged_name, m.rank_position, m.delta)
            for m in report.merges]


#: The seed engine configuration (the pre-scheduler implementation).
SEED_CONFIG = dict(searcher="linear", keyed_alignment=False,
                   jobs=1, batch_size=1, incremental_callgraph=False)


# -- task codec ---------------------------------------------------------------

class TestTaskCodec:
    """Canonical key bytes round-trip to live-interner alignment results."""

    @settings(max_examples=10, deadline=None)
    @given(st.integers(0, 10_000))
    def test_decoded_keys_reproduce_interner_equality_pattern(self, seed):
        module = build_module(seed)
        stage = LinearizeStage()
        functions = list(module.defined_functions())[:6]
        lins = [stage.get(f) for f in functions]
        for lin1 in lins:
            for lin2 in lins:
                k1, k2 = decode_canonical_keys(lin1.canonical_key_bytes(),
                                               lin2.canonical_key_bytes())
                # the cross-sequence equality pattern is all a keyed kernel
                # reads; it must match the live interner's exactly
                live = [[a == b for b in lin2.keys] for a in lin1.keys]
                local = [[a == b for b in k2] for a in k1]
                assert local == live

    def test_never_equivalent_marker_matches_nothing_not_even_itself(self):
        k1, k2 = decode_canonical_keys([b"!", b"(i1;)"], [b"!", b"(i1;)"])
        assert k1[0] != k2[0]  # two markers are not equivalent
        assert k1[0] != k1[1] and k1[0] != k2[1]
        assert k1[1] == k2[1]  # real classes still unify

    @settings(max_examples=8, deadline=None)
    @given(st.integers(0, 10_000))
    def test_task_round_trip_matches_live_interner_alignment(self, seed):
        module = build_module(seed, families=3)
        stage = LinearizeStage()
        functions = list(module.defined_functions())[:5]
        lins = [stage.get(f) for f in functions]
        for i, lin1 in enumerate(lins):
            for lin2 in lins[i + 1:]:
                want = needleman_wunsch_keyed(lin1.entries, lin2.entries,
                                              lin1.keys, lin2.keys)
                task = AlignmentTask(
                    keys1=tuple(lin1.canonical_key_bytes()),
                    keys2=tuple(lin2.canonical_key_bytes()),
                    scoring=(1, -1, -1))
                # across a (simulated) process boundary
                task = pickle.loads(pickle.dumps(task))
                result = solve_alignment_task(task)
                assert result.ops == ops_string(want.entries)
                assert result.score == want.score

    @pytest.mark.skipif(not numpy_available(), reason="requires numpy")
    def test_numpy_and_pure_solvers_agree(self):
        from repro.core.engine.offload import _resolve_solver
        module = build_module(3)
        stage = LinearizeStage()
        functions = list(module.defined_functions())[:4]
        lins = [stage.get(f) for f in functions]
        pure = _resolve_solver("pure")
        fast = _resolve_solver("auto")
        for lin1 in lins:
            for lin2 in lins:
                k1, k2 = decode_canonical_keys(lin1.canonical_key_bytes(),
                                               lin2.canonical_key_bytes())
                from repro.core import ScoringScheme
                assert pure(k1, k2, ScoringScheme()) \
                    == fast(k1, k2, ScoringScheme())

    def test_canonical_key_bytes_cached_and_consistent_with_digest(self):
        import hashlib
        module = build_module(5)
        stage = LinearizeStage()
        lin = stage.get(next(iter(module.defined_functions())))
        encoded = lin.canonical_key_bytes()
        assert lin.canonical_key_bytes() is encoded  # cached
        h = hashlib.blake2b(digest_size=16)
        for raw in encoded:
            h.update(raw)
        assert h.digest() == lin.canonical_digest()


# -- executor parity ----------------------------------------------------------

class TestProcessExecutorParity:
    """The offloaded engine reproduces the seed engine bit for bit."""

    @settings(max_examples=3, deadline=None)
    @given(st.integers(0, 10_000))
    def test_executor_jobs_parity_on_randomized_modules(self, seed):
        reference = FunctionMergingPass(
            exploration_threshold=2, **SEED_CONFIG).run(build_module(seed))
        for executor, jobs in (("serial", 1), ("thread", 2), ("thread", 8),
                               ("process", 1), ("process", 2), ("process", 8)):
            module = build_module(seed)
            report = FunctionMergingPass(
                exploration_threshold=2, executor=executor,
                jobs=jobs).run(module)
            assert decisions(report) == decisions(reference), (executor, jobs)
            verify_or_raise(module)

    def test_cache_state_parity_cold_warm_persisted(self, tmp_path):
        path = str(tmp_path / "cache.json")
        reference = FunctionMergingPass(
            exploration_threshold=2, **SEED_CONFIG).run(build_module(11))
        # cold in-memory cache
        cold = FunctionMergingPass(
            exploration_threshold=2, executor="process",
            jobs=2).run(build_module(11))
        assert decisions(cold) == decisions(reference)
        # persisted: an offloaded run populates the snapshot with every
        # shape its prefetch speculated on (a superset of what a serial
        # run's early exit computes), so an identical second run has
        # nothing left to dispatch - hits skip the offload entirely
        first = FunctionMergingPass(
            exploration_threshold=2, executor="process", jobs=2,
            alignment_cache_path=path).run(build_module(11))
        assert decisions(first) == decisions(reference)
        assert first.scheduler_stats["offload_tasks"] > 0
        warm = FunctionMergingPass(
            exploration_threshold=2, executor="process", jobs=2,
            alignment_cache_path=path).run(build_module(11))
        assert decisions(warm) == decisions(reference)
        assert warm.scheduler_stats["offload_tasks"] == 0
        assert warm.scheduler_stats["align_cache_cross_run_hits"] > 0

    def test_oracle_parity_under_process_executor(self):
        reference = FunctionMergingPass(oracle=True, oracle_prune=False,
                                        **SEED_CONFIG).run(build_module(3))
        report = FunctionMergingPass(oracle=True, executor="process", jobs=2,
                                     batch_size=8).run(build_module(3))
        assert decisions(report) == decisions(reference)

    def test_pure_python_worker_leg(self):
        # the no-NumPy process-executor leg, pinned rather than hoping the
        # environment lacks numpy: workers solve with the pure kernel
        reference = FunctionMergingPass(
            exploration_threshold=2, **SEED_CONFIG).run(build_module(9))
        engine = MergeEngine(exploration_threshold=2, batch_size=8)
        executor = ProcessExecutor(2, kernel="pure")
        scheduler = engine.make_scheduler(executor=executor)
        module = build_module(9)
        try:
            report = engine.run(module, scheduler=scheduler)
        finally:
            scheduler.close()
        assert decisions(report) == decisions(reference)
        assert report.scheduler_stats["offload_tasks"] > 0

    def test_offload_disabled_without_cache_but_still_correct(self):
        reference = FunctionMergingPass(
            exploration_threshold=2, **SEED_CONFIG).run(build_module(7))
        report = FunctionMergingPass(
            exploration_threshold=2, executor="process", jobs=2,
            alignment_cache=False).run(build_module(7))
        assert decisions(report) == decisions(reference)
        # nowhere for worker results to land -> no dispatch, plain planning
        assert report.scheduler_stats["offload_tasks"] == 0

    def test_offload_stats_and_alignment_accounting(self):
        report = FunctionMergingPass(
            exploration_threshold=2, executor="process",
            jobs=2).run(build_module(5, families=5))
        stats = report.scheduler_stats
        assert stats["offload_rounds"] > 0
        assert stats["offload_tasks"] > 0
        assert stats["offload_wall_seconds"] > 0.0
        # offload wall clock is alignment time (Figure-13 bucket stays true)
        assert report.stage_stats["align"]["offloaded"] == stats["offload_tasks"]
        assert report.stage_times["alignment"] >= stats["offload_wall_seconds"]

    def test_env_knob_selects_the_executor(self, monkeypatch):
        monkeypatch.setenv(ENGINE_EXECUTOR_ENV, "process")
        engine = MergeEngine(exploration_threshold=2, jobs=2)
        assert engine.executor_kind == "process"
        # explicit executor beats the environment
        explicit = MergeEngine(exploration_threshold=2, jobs=2,
                               executor="thread")
        assert explicit.executor_kind == "thread"
        report = engine.run(build_module(3))
        assert report.scheduler_stats["offload_rounds"] > 0


# -- task-group packing -------------------------------------------------------

class TestTaskPacking:
    """Tasks sharing one left sequence ship as one packed group; results
    come back in the original task order regardless of grouping."""

    def _lins(self, seed=3, count=5):
        # content-distinct linearizations only: clones share canonical key
        # bytes and would collapse into one packing family
        module = build_module(seed, families=4)
        stage = LinearizeStage()
        lins, digests = [], set()
        for function in module.defined_functions():
            lin = stage.get(function)
            if lin.canonical_digest() not in digests:
                digests.add(lin.canonical_digest())
                lins.append(lin)
            if len(lins) == count:
                break
        assert len(lins) == count
        return lins

    def _task(self, lin1, lin2, scoring=(1, -1, -1)):
        return AlignmentTask(keys1=tuple(lin1.canonical_key_bytes()),
                             keys2=tuple(lin2.canonical_key_bytes()),
                             scoring=scoring)

    def test_packed_results_match_per_task_solve_in_order(self):
        lins = self._lins()
        # interleave two left sequences and two scorings so grouping must
        # reorder internally but not externally
        tasks = [self._task(lins[0], lins[1]),
                 self._task(lins[1], lins[2]),
                 self._task(lins[0], lins[2]),
                 self._task(lins[0], lins[1], scoring=(2, -1, -2)),
                 self._task(lins[1], lins[3]),
                 self._task(lins[0], lins[4])]
        want = [solve_alignment_task(task) for task in tasks]
        executor = ProcessExecutor(2, kernel="pure")
        try:
            results, seconds = executor.run_tasks(tasks)
        finally:
            executor.close()
        assert results == want
        assert seconds >= 0.0
        # three tasks share lins[0]+default scoring (the different-scoring
        # one forms its own group) and two share lins[1]: a group of k
        # pairs saves k-1 keys1 encodings
        saved = (2 * sum(len(raw) for raw in lins[0].canonical_key_bytes())
                 + sum(len(raw) for raw in lins[1].canonical_key_bytes()))
        assert executor.offload_bytes_saved == saved

    def test_group_solver_equivalent_to_task_list(self):
        from repro.core.engine.offload import (AlignmentTaskGroup,
                                               solve_alignment_group)
        lins = self._lins()
        tasks = [self._task(lins[0], lin2) for lin2 in lins[1:]]
        group = AlignmentTaskGroup(
            keys1=tasks[0].keys1,
            keys2_list=tuple(task.keys2 for task in tasks),
            scoring=tasks[0].scoring)
        group = pickle.loads(pickle.dumps(group))  # across the boundary
        assert solve_alignment_group(group) \
            == [solve_alignment_task(task) for task in tasks]

    def test_bytes_saved_stat_surfaces_in_scheduler_stats(self):
        report = FunctionMergingPass(
            exploration_threshold=2, executor="process",
            jobs=2).run(build_module(5, families=5))
        stats = report.scheduler_stats
        # candidates of one entry share its left sequence, so clone-family
        # modules always pack something
        assert stats["offload_bytes_saved"] > 0

    def test_serial_runs_report_zero_bytes_saved(self):
        report = FunctionMergingPass(
            exploration_threshold=2, executor="serial").run(build_module(3))
        assert report.scheduler_stats["offload_bytes_saved"] == 0


# -- hydrate-to-plan rank reuse -----------------------------------------------

class TestRankReuse:
    """The hydrate step's candidate rankings are handed to the finish-plan
    step (same fingerprint-index generation), skipping the re-query."""

    def test_offloaded_runs_reuse_rankings(self):
        reference = FunctionMergingPass(
            exploration_threshold=2, **SEED_CONFIG).run(build_module(5, families=5))
        report = FunctionMergingPass(
            exploration_threshold=2, executor="process",
            jobs=2).run(build_module(5, families=5))
        assert decisions(report) == decisions(reference)
        assert report.scheduler_stats["rank_reuse_hits"] > 0
        assert report.stage_stats["candidate-search"]["rank_reuse_hits"] \
            == report.scheduler_stats["rank_reuse_hits"]

    def test_serial_runs_never_reuse(self):
        report = FunctionMergingPass(
            exploration_threshold=2, executor="serial").run(build_module(3))
        assert report.scheduler_stats["rank_reuse_hits"] == 0

    def test_stale_rankings_are_not_reused_across_commits(self):
        # a commit bumps the fingerprint-index generation, so rankings
        # hydrated before it must be dropped, not reused: decisions stay
        # bit-identical even with batches large enough to straddle commits
        reference = FunctionMergingPass(
            exploration_threshold=2, **SEED_CONFIG).run(
                build_module(7, families=6, clones=3))
        report = FunctionMergingPass(
            exploration_threshold=2, executor="process", jobs=2,
            batch_size=64).run(build_module(7, families=6, clones=3))
        assert decisions(report) == decisions(reference)


# -- executor lifecycle on failure --------------------------------------------

def _simple_task():
    return AlignmentTask(keys1=(b"(i1;)", b"(i2;)") * 8,
                         keys2=(b"(i1;)", b"(i3;)") * 8,
                         scoring=(1, -1, -1))


class _ClosableFakeExecutor(SerialExecutor):
    """Offload-capable executor whose run_tasks fails on command."""

    offloads_alignment = True

    def __init__(self, failure_index):
        self.failure_index = failure_index
        self.closed = False

    def run_tasks(self, tasks):
        raise TaskFailure(self.failure_index, RuntimeError("boom"))

    def close(self):
        self.closed = True


class TestExecutorLifecycle:
    def test_task_failure_attributes_to_requesting_entry_and_closes(self):
        from collections import deque
        executor = _ClosableFakeExecutor(failure_index=2)
        pending = [PendingAlignment(entry=f"e{i}", key=(i,), task=_simple_task())
                   for i in range(4)]
        scheduler = MergeScheduler(
            plan=lambda name: None, commit=None, query_key=None,
            absorb=None, executor=executor,
            prefetch=lambda names: pending,
            store=lambda key, ops, score: None)
        with pytest.raises(PlanningError, match="'e2'") as excinfo:
            scheduler.run(deque(["e0", "e1", "e2", "e3"]),
                          {"e0", "e1", "e2", "e3"})
        assert excinfo.value.entry == "e2"
        assert isinstance(excinfo.value.__cause__, TaskFailure)
        # scheduler.run shut the pool down even though nobody owns it
        assert executor.closed

    def test_killed_worker_surfaces_task_failure(self):
        executor = ProcessExecutor(2, kernel="pure")
        try:
            # warm the pool so worker pids exist
            results, _ = executor.run_tasks([_simple_task()] * 4)
            assert len(results) == 4
            victim = next(iter(executor._pool._processes))
            os.kill(victim, signal.SIGKILL)
            deadline = time.monotonic() + 30
            with pytest.raises(TaskFailure):
                # the dying worker may need a dispatch or two to surface
                while time.monotonic() < deadline:
                    executor.run_tasks([_simple_task()] * 64)
        finally:
            executor.close()

    def test_killed_worker_mid_run_raises_planning_error_and_tears_down(self):
        module = build_module(5, families=5)
        engine = MergeEngine(exploration_threshold=2, batch_size=8)
        executor = ProcessExecutor(2, kernel="pure")
        scheduler = engine.make_scheduler(executor=executor)
        original_run_tasks = executor.run_tasks

        def kill_then_run(tasks):
            # make sure workers exist, then kill one mid-batch
            original_run_tasks([_simple_task()])
            for victim in list(executor._pool._processes):
                os.kill(victim, signal.SIGKILL)
            return original_run_tasks(tasks)

        executor.run_tasks = kill_then_run
        with pytest.raises(PlanningError) as excinfo:
            engine.run(module, scheduler=scheduler)
        # the failure names a real worklist entry of this module
        assert excinfo.value.entry in {f.name for f in
                                       build_module(5, families=5).defined_functions()}
        # ... and the pool was shut down by the scheduler's failure path,
        # even though the engine does not own this scheduler
        assert executor._pool._shutdown_thread or executor._pool._broken

    def test_serial_engines_unaffected_by_offload_plumbing(self):
        # the prefetch/store callbacks are wired for every executor, but
        # non-offloading executors never call them (executor pinned: the CI
        # matrix leg exports REPRO_ENGINE_EXECUTOR=process)
        report = FunctionMergingPass(exploration_threshold=2,
                                     executor="serial").run(build_module(3))
        assert report.scheduler_stats["offload_rounds"] == 0
        assert report.scheduler_stats["offload_tasks"] == 0


class TestKeepAliveExecutors:
    def test_keep_alive_pool_is_reused_across_runs(self):
        # two consecutive engine runs through a keep-alive executor must be
        # served by the SAME worker processes - the daemon's warm-pool
        # contract (no per-request pool spawn)
        executor = ProcessExecutor(1, kernel="pure", keep_alive=True)
        try:
            pids_first = executor.worker_pids()
            assert pids_first
            for seed in (3, 3):
                engine = MergeEngine(exploration_threshold=2, jobs=1,
                                     executor=executor)
                report = engine.run(build_module(seed))
                assert report.merge_count >= 1
                assert not executor.closed
            assert executor.worker_pids() == pids_first
        finally:
            executor.close()
        assert executor.closed

    def test_release_respects_keep_alive_and_close_is_final(self):
        keep = ProcessExecutor(1, kernel="pure", keep_alive=True)
        keep.release()
        assert not keep.closed  # release is a no-op while kept alive
        keep.close()
        assert keep.closed      # explicit close always wins
        plain = ProcessExecutor(1, kernel="pure")
        plain.release()
        assert plain.closed     # non-keep-alive: release tears down

    def test_borrowed_transient_executor_is_released_by_the_run(self):
        # a caller-provided executor without keep_alive is closed by the
        # engine's release path at the end of a successful run
        executor = make_executor("thread", 2)
        assert not executor.keep_alive
        report = MergeEngine(exploration_threshold=2, jobs=2,
                             executor=executor).run(build_module(3))
        assert report.merge_count >= 1
        assert executor.closed

    def test_decisions_identical_between_fresh_and_warm_pools(self):
        reference = FunctionMergingPass(
            exploration_threshold=2, **SEED_CONFIG).run(build_module(11))
        executor = ProcessExecutor(2, kernel="pure", keep_alive=True)
        try:
            warm_runs = []
            for _ in range(2):
                report = MergeEngine(exploration_threshold=2, jobs=2,
                                     executor=executor).run(build_module(11))
                warm_runs.append(decisions(report))
        finally:
            executor.close()
        assert warm_runs[0] == warm_runs[1] == decisions(reference)


# -- adaptive batching --------------------------------------------------------

class TestAdaptiveBatching:
    def test_sizer_is_deterministic_in_the_stats_stream(self):
        stream = [(64, 30), (32, 10), (16, 0), (16, 1), (16, 0), (32, 0),
                  (64, 40), (32, 0), (64, 2), (128, 7)]
        traces = []
        for _ in range(2):
            sizer = AdaptiveBatchSizer(64, jobs=4)
            traces.append([sizer.after_batch(p, c) for p, c in stream])
        assert traces[0] == traces[1]

    def test_sizer_multiplicative_moves_and_bounds(self):
        sizer = AdaptiveBatchSizer(64, jobs=4)
        assert sizer.after_batch(64, 32) == 32   # rate 0.5 > HIGH: halve
        assert sizer.after_batch(32, 16) == 16
        assert sizer.after_batch(16, 8) == 8
        assert sizer.after_batch(8, 8) == 4      # floor = jobs
        assert sizer.after_batch(4, 4) == 4      # never below jobs
        for _ in range(12):
            size = sizer.after_batch(sizer.size, 0)  # full, conflict-free
        assert size == 64 * 8                    # ceiling = 8x initial
        # a partial (non-full) batch is not an occupancy signal: hold
        sizer2 = AdaptiveBatchSizer(16, jobs=2)
        assert sizer2.after_batch(7, 0) == 16
        # mid-band conflict rates hold too
        assert sizer2.after_batch(16, 2) == 16

    def test_engine_trace_is_reproducible_and_decisions_unchanged(self):
        reference = FunctionMergingPass(
            exploration_threshold=2, **SEED_CONFIG).run(build_module(7, families=6))
        runs = []
        for _ in range(2):
            report = FunctionMergingPass(
                exploration_threshold=2, jobs=2, batch_size=64,
                adaptive_batch=True).run(build_module(7, families=6))
            runs.append(report)
        assert decisions(runs[0]) == decisions(runs[1]) == decisions(reference)
        trace0 = runs[0].scheduler_stats["batch_size_trace"]
        assert trace0 == runs[1].scheduler_stats["batch_size_trace"]
        assert trace0  # adaptive runs record every round

    def test_fixed_batching_records_no_trace(self):
        report = FunctionMergingPass(exploration_threshold=2,
                                     jobs=2).run(build_module(7))
        assert report.scheduler_stats["batch_size_trace"] == []

    def test_adaptive_shrinks_batches_under_conflict_pressure(self):
        # batching the whole worklist of a clone-heavy module conflicts
        # heavily; the controller must react by shrinking
        report = FunctionMergingPass(
            exploration_threshold=2, jobs=2, batch_size=64,
            adaptive_batch=True).run(build_module(7, families=6, clones=3))
        trace = report.scheduler_stats["batch_size_trace"]
        assert min(trace) < 64

    def test_env_knob_enables_adaptivity(self, monkeypatch):
        monkeypatch.setenv("REPRO_ENGINE_ADAPTIVE_BATCH", "1")
        assert MergeEngine(exploration_threshold=2).adaptive_batch
        monkeypatch.setenv("REPRO_ENGINE_ADAPTIVE_BATCH", "0")
        assert not MergeEngine(exploration_threshold=2).adaptive_batch

    def test_adaptive_process_executor_parity(self):
        reference = FunctionMergingPass(
            exploration_threshold=2, **SEED_CONFIG).run(build_module(13, families=5))
        report = FunctionMergingPass(
            exploration_threshold=2, executor="process", jobs=2,
            batch_size=32, adaptive_batch=True).run(build_module(13, families=5))
        assert decisions(report) == decisions(reference)
