"""Tests for cross-run persistence of the alignment cache.

Covers the snapshot round trip (save/load, versioning, checksum), every
degrade-to-cold failure mode (corrupt JSON, wrong format tag, version
mismatch, checksum mismatch, malformed entries - all warn, never raise),
the ``alignment_cache_path`` / ``REPRO_ALIGN_CACHE`` wiring through
engine/pass/pipeline, the >= 90% warm hit-rate acceptance bar on family
workloads, and decision parity across {no cache, cold, warm, persisted}
x kernels x jobs.
"""

import json
import os
import random
import warnings

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import FunctionMergingPass, MergeEngine, numpy_available
from repro.core.engine.align_cache import (ALIGN_CACHE_ENV, SNAPSHOT_VERSION,
                                           AlignmentCache, pack_ops,
                                           unpack_ops)
from repro.core.native import native_available
from repro.evaluation.pipeline import compile_module
from repro.ir import Module
from repro.workloads import FamilySpec, FunctionSpec, make_family


def build_module(seed=7, families=5):
    module = Module(f"persist_{seed}")
    rng = random.Random(seed)
    for index in range(families):
        spec = FunctionSpec(
            f"fam{index}",
            num_blocks=2 + (index + seed) % 3,
            instructions_per_block=4 + ((index + seed) % 4) * 2,
            call_ratio=0.3, memory_ratio=0.2,
            returns_float=bool((index + seed) % 5 == 1),
            seed=100 + 13 * seed + index)
        make_family(module, spec,
                    FamilySpec(identical=2, structural=2, partial=1), rng)
    return module


def decisions(report):
    return [(m.function1, m.function2, m.merged_name, m.rank_position, m.delta)
            for m in report.merges]


def hit_rate(report):
    stats = report.scheduler_stats
    total = stats["align_cache_hits"] + stats["align_cache_misses"]
    return stats["align_cache_hits"] / total if total else 0.0


def _digest_key(byte1, byte2, scoring=(1, -1, -1)):
    return (bytes([byte1] * 16), bytes([byte2] * 16), scoring)


# -- snapshot round trip ------------------------------------------------------

class TestSnapshotRoundTrip:
    def test_save_load_preserves_entries_and_marks_persisted(self, tmp_path):
        path = str(tmp_path / "cache.json")
        cache = AlignmentCache()
        cache.put(_digest_key(1, 2), "mmlr", 3)
        cache.put(_digest_key(3, 4, (2, -3, -2)), "m", 1)
        assert cache.save(path)

        fresh = AlignmentCache()
        assert fresh.load(path) == 2
        assert fresh.get(_digest_key(1, 2)) == ("mmlr", 3)
        assert fresh.get(_digest_key(3, 4, (2, -3, -2))) == ("m", 1)
        assert fresh.get(_digest_key(9, 9)) is None
        assert fresh.hits == 2 and fresh.cross_run_hits == 2
        stats = fresh.stats_dict()
        assert stats["align_cache_cross_run_hits"] == 2
        assert stats["align_cache_persisted_entries"] == 2

    def test_entries_computed_this_run_are_not_cross_run_hits(self, tmp_path):
        path = str(tmp_path / "cache.json")
        cache = AlignmentCache()
        cache.put(_digest_key(1, 2), "mm", 2)
        cache.save(path)
        cache.clear()
        cache.load(path)
        cache.put(_digest_key(1, 2), "mm", 2)  # recomputed: no longer warm
        cache.get(_digest_key(1, 2))
        assert cache.hits == 1 and cache.cross_run_hits == 0

    def test_unserializable_keys_are_skipped_not_fatal(self, tmp_path):
        path = str(tmp_path / "cache.json")
        cache = AlignmentCache()
        cache.put(("custom-test-key",), "m", 1)
        cache.put(_digest_key(5, 6), "ml", 0)
        assert cache.save(path)
        fresh = AlignmentCache()
        assert fresh.load(path) == 1
        assert fresh.get(_digest_key(5, 6)) == ("ml", 0)

    def test_load_respects_capacity_keeping_newest(self, tmp_path):
        path = str(tmp_path / "cache.json")
        cache = AlignmentCache()
        for index in range(10):
            cache.put(_digest_key(index, index), "m" * (index + 1), index)
        cache.save(path)
        small = AlignmentCache(capacity=3)
        assert small.load(path) == 3
        assert len(small) == 3
        assert small.get(_digest_key(9, 9)) == ("m" * 10, 9)
        assert small.get(_digest_key(0, 0)) is None

    def test_save_merges_with_entries_already_on_disk(self, tmp_path):
        # a small LRU must not shrink the shared snapshot: entries evicted
        # (or never held) by this run's cache survive the save
        path = str(tmp_path / "cache.json")
        first = AlignmentCache(capacity=2)
        first.put(_digest_key(1, 1), "m", 1)
        first.put(_digest_key(2, 2), "mm", 2)
        first.save(path)
        second = AlignmentCache(capacity=2)
        second.put(_digest_key(3, 3), "mmm", 3)
        second.put(_digest_key(4, 4), "mmmm", 4)
        second.save(path)

        union = AlignmentCache()
        assert union.load(path) == 4
        for byte, ops, score in ((1, "m", 1), (2, "mm", 2),
                                 (3, "mmm", 3), (4, "mmmm", 4)):
            assert union.get(_digest_key(byte, byte)) == (ops, score)

    def test_save_overwrites_duplicate_keys_with_this_runs_value(self, tmp_path):
        path = str(tmp_path / "cache.json")
        stale = AlignmentCache()
        stale.put(_digest_key(1, 1), "m", 1)
        stale.save(path)
        current = AlignmentCache()
        current.put(_digest_key(1, 1), "m", 1)
        current.put(_digest_key(2, 2), "r", -1)
        current.save(path)
        fresh = AlignmentCache()
        assert fresh.load(path) == 2

    def test_missing_file_is_silent_cold_start(self, tmp_path):
        cache = AlignmentCache()
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert cache.load(str(tmp_path / "nope.json")) == 0
        assert len(cache) == 0

    def test_save_failure_warns_instead_of_raising(self, tmp_path):
        cache = AlignmentCache()
        cache.put(_digest_key(1, 2), "m", 1)
        with pytest.warns(RuntimeWarning, match="could not save"):
            assert not cache.save(str(tmp_path / "no" / "such" / "dir.json"))


# -- failure modes degrade to a cold cache ------------------------------------

class TestSnapshotRejection:
    def _assert_cold(self, path, match):
        cache = AlignmentCache()
        with pytest.warns(RuntimeWarning, match=match):
            assert cache.load(path) == 0
        assert len(cache) == 0

    def _write(self, tmp_path, payload) -> str:
        path = str(tmp_path / "cache.json")
        with open(path, "w") as handle:
            handle.write(payload)
        return path

    def _valid_snapshot(self, tmp_path) -> str:
        path = str(tmp_path / "cache.json")
        cache = AlignmentCache()
        cache.put(_digest_key(1, 2), "mmm", 3)
        cache.save(path)
        return path

    def test_garbage_json(self, tmp_path):
        self._assert_cold(self._write(tmp_path, "{not json"), "unreadable")

    def test_non_snapshot_json(self, tmp_path):
        self._assert_cold(self._write(tmp_path, '{"hello": 1}'),
                          "not an alignment-cache snapshot")

    def test_version_mismatch(self, tmp_path):
        path = self._valid_snapshot(tmp_path)
        snapshot = json.load(open(path))
        snapshot["version"] = SNAPSHOT_VERSION + 1
        json.dump(snapshot, open(path, "w"))
        self._assert_cold(path, "version")

    def test_checksum_mismatch(self, tmp_path):
        path = self._valid_snapshot(tmp_path)
        snapshot = json.load(open(path))
        snapshot["entries"][0][4] = 99  # tamper with a score
        json.dump(snapshot, open(path, "w"))
        self._assert_cold(path, "checksum")

    def test_malformed_entry(self, tmp_path):
        path = self._valid_snapshot(tmp_path)
        snapshot = json.load(open(path))
        snapshot["entries"][0][3] = "mxl"  # not an ops-table index
        from repro.core.engine.align_cache import _entries_checksum
        snapshot["checksum"] = _entries_checksum(
            [snapshot["ops"], snapshot["entries"]])
        json.dump(snapshot, open(path, "w"))
        self._assert_cold(path, "malformed")

    def test_malformed_ops_table(self, tmp_path):
        path = self._valid_snapshot(tmp_path)
        snapshot = json.load(open(path))
        snapshot["ops"] = "3m"  # must be a list of packed strings
        json.dump(snapshot, open(path, "w"))
        self._assert_cold(path, "ops table")

    def test_engine_survives_corrupt_snapshot(self, tmp_path):
        path = self._write(tmp_path, "\x00\x01 not a snapshot")
        with pytest.warns(RuntimeWarning):
            report = FunctionMergingPass(
                exploration_threshold=2,
                alignment_cache_path=path).run(build_module())
        assert report.merge_count >= 1
        assert report.scheduler_stats["align_cache_cross_run_hits"] == 0
        # the engine saved a fresh snapshot over the corrupt file
        fresh = AlignmentCache()
        assert fresh.load(path) > 0


# -- engine / pass / pipeline wiring -----------------------------------------

class TestEnginePersistence:
    def test_second_run_hits_at_least_90_percent(self, tmp_path):
        path = str(tmp_path / "cache.json")
        cold = FunctionMergingPass(
            exploration_threshold=2,
            alignment_cache_path=path).run(build_module())
        warm = FunctionMergingPass(
            exploration_threshold=2,
            alignment_cache_path=path).run(build_module())
        assert decisions(warm) == decisions(cold)
        assert hit_rate(warm) >= 0.9
        assert warm.scheduler_stats["align_cache_cross_run_hits"] > 0
        assert warm.scheduler_stats["align_cache_misses"] == 0

    def test_snapshot_accumulates_across_different_modules(self, tmp_path):
        path = str(tmp_path / "cache.json")
        FunctionMergingPass(exploration_threshold=2,
                            alignment_cache_path=path).run(build_module(3))
        after_first = len(json.load(open(path))["entries"])
        FunctionMergingPass(exploration_threshold=2,
                            alignment_cache_path=path).run(build_module(11))
        after_second = len(json.load(open(path))["entries"])
        assert after_second > after_first

    def test_env_knob_selects_the_snapshot(self, tmp_path, monkeypatch):
        path = str(tmp_path / "env_cache.json")
        monkeypatch.setenv(ALIGN_CACHE_ENV, path)
        FunctionMergingPass(exploration_threshold=2).run(build_module())
        assert os.path.exists(path)
        warm = FunctionMergingPass(exploration_threshold=2).run(build_module())
        assert warm.scheduler_stats["align_cache_cross_run_hits"] > 0

    def test_explicit_path_beats_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv(ALIGN_CACHE_ENV, str(tmp_path / "env.json"))
        explicit = str(tmp_path / "explicit.json")
        engine = MergeEngine(alignment_cache_path=explicit)
        assert engine.alignment_cache_path == explicit

    def test_no_path_means_no_snapshot(self, tmp_path, monkeypatch):
        monkeypatch.delenv(ALIGN_CACHE_ENV, raising=False)
        engine = MergeEngine(exploration_threshold=2)
        assert engine.alignment_cache_path is None
        engine.run(build_module())
        assert list(tmp_path.iterdir()) == []

    def test_disabled_cache_ignores_path(self, tmp_path):
        path = str(tmp_path / "cache.json")
        report = FunctionMergingPass(
            exploration_threshold=2, alignment_cache=False,
            alignment_cache_path=path).run(build_module())
        assert report.merge_count >= 1
        assert not os.path.exists(path)

    def test_unkeyed_alignment_skips_snapshot_and_wave_planning(self, tmp_path):
        # the generic predicate path never consults the cache, so a run on
        # it must neither touch the snapshot nor pay for content grouping
        path = str(tmp_path / "cache.json")
        engine = MergeEngine(exploration_threshold=2, keyed_alignment=False,
                             alignment_cache_path=path)
        assert not engine.alignment.uses_cache
        scheduler = engine.make_scheduler()
        try:
            assert scheduler.content_key is None
        finally:
            scheduler.close()
        engine.run(build_module())
        assert not os.path.exists(path)
        # the keyed default does both
        keyed = MergeEngine(exploration_threshold=2,
                            alignment_cache_path=path)
        assert keyed.alignment.uses_cache
        keyed.run(build_module())
        assert os.path.exists(path)

    def test_pipeline_threads_the_path_through(self, tmp_path):
        path = str(tmp_path / "cache.json")
        compile_module(build_module(5), "fmsa", threshold=2,
                       alignment_cache_path=path)
        assert os.path.exists(path)
        result = compile_module(build_module(5), "fmsa", threshold=2,
                                alignment_cache_path=path)
        stats = result.merge_report.scheduler_stats
        assert stats["align_cache_cross_run_hits"] > 0


# -- concurrent snapshot sharing (file lock) ----------------------------------

class TestConcurrentSnapshotWriters:
    def test_racing_writers_lose_no_entries(self):
        # two processes hammer one snapshot with interleaved read-merge-write
        # cycles; the advisory lock makes every merge see the latest state,
        # so the union of both writers' entries survives (this reliably
        # lost entries under the old lockless atomic-replace protocol).
        # The harness is shared with the CI cache-persistence driver so the
        # two checks cannot drift apart.
        import sys
        benchmarks = os.path.join(os.path.dirname(__file__), os.pardir,
                                  os.pardir, "benchmarks")
        if benchmarks not in sys.path:
            sys.path.insert(0, benchmarks)
        from ci_cache_persistence import check_concurrent_writers
        assert check_concurrent_writers(entries_per_writer=20) == []

    def test_lock_file_sits_next_to_the_snapshot(self, tmp_path):
        path = str(tmp_path / "cache.json")
        cache = AlignmentCache()
        cache.put(_digest_key(1, 2), "m", 1)
        cache.save(path)
        assert os.path.exists(path + ".lock")


# -- generational compaction --------------------------------------------------

class TestSnapshotCompaction:
    @staticmethod
    def _save_fresh(path, byte, max_generations=None):
        """One run: load the shared snapshot, reference only ``byte``'s
        entry (by recomputing it), save back."""
        cache = AlignmentCache(max_generations=max_generations)
        cache.load(path)
        cache.put(_digest_key(byte, byte), "m", 1)
        cache.save(path)
        return cache

    def test_generation_counter_bumps_per_load(self, tmp_path):
        path = str(tmp_path / "cache.json")
        self._save_fresh(path, 1)
        for expected in (1, 2, 3):
            cache = AlignmentCache()
            cache.load(path)
            assert cache.stats_dict()["align_cache_generation"] == expected
            cache.save(path)

    def test_unreferenced_entries_age_out_after_horizon(self, tmp_path):
        path = str(tmp_path / "cache.json")
        self._save_fresh(path, 1, max_generations=2)
        self._save_fresh(path, 2, max_generations=2)
        # entry 1 is never referenced again; after 2 more generations it
        # must be gone while the always-recomputed entry 2 survives
        for _ in range(3):
            self._save_fresh(path, 2, max_generations=2)
        survivor = AlignmentCache()
        survivor.load(path)
        assert survivor.get(_digest_key(2, 2)) == ("m", 1)
        assert survivor.contains(_digest_key(1, 1)) is False

    def test_hits_refresh_an_entrys_generation(self, tmp_path):
        path = str(tmp_path / "cache.json")
        self._save_fresh(path, 1, max_generations=2)
        for _ in range(4):
            cache = AlignmentCache(max_generations=2)
            cache.load(path)
            assert cache.get(_digest_key(1, 1)) == ("m", 1)  # referenced
            cache.save(path)
        fresh = AlignmentCache()
        fresh.load(path)
        assert fresh.get(_digest_key(1, 1)) == ("m", 1)

    def test_zero_disables_aging(self, tmp_path):
        path = str(tmp_path / "cache.json")
        self._save_fresh(path, 1, max_generations=0)
        for _ in range(6):
            self._save_fresh(path, 2, max_generations=0)
        keeper = AlignmentCache()
        keeper.load(path)
        assert keeper.get(_digest_key(1, 1)) == ("m", 1)

    def test_env_knob_sets_the_default_horizon(self, monkeypatch):
        from repro.core.engine.align_cache import (ALIGN_CACHE_MAX_GEN_ENV,
                                                   DEFAULT_MAX_GENERATIONS)
        monkeypatch.delenv(ALIGN_CACHE_MAX_GEN_ENV, raising=False)
        assert AlignmentCache().max_generations == DEFAULT_MAX_GENERATIONS
        monkeypatch.setenv(ALIGN_CACHE_MAX_GEN_ENV, "7")
        assert AlignmentCache().max_generations == 7
        monkeypatch.setenv(ALIGN_CACHE_MAX_GEN_ENV, "0")
        assert AlignmentCache().max_generations is None
        assert AlignmentCache(max_generations=5).max_generations == 5

    def test_loading_a_missing_snapshot_leaves_no_lock_file(self, tmp_path):
        path = str(tmp_path / "never-written.json")
        cache = AlignmentCache()
        assert cache.load(path) == 0
        assert list(tmp_path.iterdir()) == []

    def test_writer_that_never_loaded_does_not_rewind_the_clock(self, tmp_path):
        # age the shared snapshot's clock forward, then have a fresh cache
        # (local generation 0) save into it: the counter must not rewind,
        # and the fresh writer's own entries must be stamped current
        path = str(tmp_path / "cache.json")
        self._save_fresh(path, 1)
        for _ in range(5):
            cache = AlignmentCache()
            cache.load(path)
            cache.save(path)
        before = json.load(open(path))["generation"]
        assert before == 5
        fresh = AlignmentCache(max_generations=3)  # never load()s
        fresh.put(_digest_key(9, 9), "m", 1)
        fresh.save(path)
        snapshot = json.load(open(path))
        assert snapshot["generation"] == before
        survivor = AlignmentCache()
        survivor.load(path)
        assert survivor.get(_digest_key(9, 9)) == ("m", 1)

    def test_version1_snapshots_still_load(self, tmp_path):
        # a pre-compaction (version 1) snapshot: rows without generations
        from repro.core.engine.align_cache import (SNAPSHOT_FORMAT,
                                                   _entries_checksum)
        path = str(tmp_path / "v1.json")
        digest = (5).to_bytes(16, "big").hex()
        entries = [[digest, digest, [1, -1, -1], "mm", 2]]
        json.dump({"format": SNAPSHOT_FORMAT, "version": 1,
                   "entries": entries,
                   "checksum": _entries_checksum(entries)},
                  open(path, "w"))
        cache = AlignmentCache()
        assert cache.load(path) == 1
        key = ((5).to_bytes(16, "big"), (5).to_bytes(16, "big"), (1, -1, -1))
        assert cache.get(key) == ("mm", 2)

    def test_version2_snapshots_still_load(self, tmp_path):
        # a pre-ops-table (version 2) snapshot: raw op strings inline
        from repro.core.engine.align_cache import (SNAPSHOT_FORMAT,
                                                   _entries_checksum)
        path = str(tmp_path / "v2.json")
        digest = (6).to_bytes(16, "big").hex()
        entries = [[digest, digest, [1, -1, -1], "mml", 1, 4]]
        json.dump({"format": SNAPSHOT_FORMAT, "version": 2, "generation": 4,
                   "entries": entries,
                   "checksum": _entries_checksum(entries)},
                  open(path, "w"))
        cache = AlignmentCache()
        assert cache.load(path) == 1
        key = ((6).to_bytes(16, "big"), (6).to_bytes(16, "big"), (1, -1, -1))
        assert cache.get(key) == ("mml", 1)
        # saving after a v2 load rewrites the file in the current format
        assert cache.save(path)
        assert json.load(open(path))["version"] == SNAPSHOT_VERSION


# -- packed op strings (snapshot v3) ------------------------------------------

class TestPackedOps:
    @settings(max_examples=200, deadline=None)
    @given(st.text(alphabet="mlr", max_size=60))
    def test_pack_round_trips_and_never_grows(self, ops):
        packed = pack_ops(ops)
        assert unpack_ops(packed) == ops
        assert len(packed) <= len(ops)

    def test_pack_examples(self):
        assert pack_ops("") == ""
        assert pack_ops("mmmllr") == "3m2lr"
        assert pack_ops("m" * 120) == "120m"
        assert unpack_ops("12m2lr") == "m" * 12 + "llr"

    @pytest.mark.parametrize("bad", ["3", "x", "0m", "3x", "m0l"])
    def test_malformed_packed_ops_rejected(self, bad):
        with pytest.raises(ValueError):
            unpack_ops(bad)

    def test_snapshot_stores_each_distinct_shape_once(self, tmp_path):
        path = str(tmp_path / "cache.json")
        cache = AlignmentCache()
        for index in range(6):  # a clone family: six pairs, one shape
            cache.put(_digest_key(index, index + 1), "mmmmlr", 4)
        cache.put(_digest_key(9, 9), "lr", -2)
        assert cache.save(path)
        snapshot = json.load(open(path))
        assert snapshot["version"] == SNAPSHOT_VERSION
        assert sorted(snapshot["ops"]) == ["4mlr", "lr"]  # packed, deduped
        assert all(isinstance(row[3], int) for row in snapshot["entries"])
        fresh = AlignmentCache()
        assert fresh.load(path) == 7
        assert fresh.get(_digest_key(0, 1)) == ("mmmmlr", 4)
        assert fresh.get(_digest_key(9, 9)) == ("lr", -2)


# -- decision parity: cache modes x kernels x jobs ----------------------------

#: Alignment kernels exercised by the parity matrix (None = engine default).
KERNELS = [None, "nw-banded"] + (
    ["nw-numpy", "nw-banded-numpy"] if numpy_available() else []) + (
    ["nw-native", "nw-banded-native"] if native_available() else [])


class TestCacheModeParity:
    """Merge decisions are bit-identical with the cache off, cold, warm and
    persisted, for every kernel x jobs x batch-size combination."""

    @settings(max_examples=4, deadline=None)
    @given(st.integers(0, 10_000))
    def test_cache_modes_never_change_decisions(self, tmp_path_factory, seed):
        path = str(tmp_path_factory.mktemp("parity") / f"cache_{seed}.json")
        reference = FunctionMergingPass(
            exploration_threshold=2,
            alignment_cache=False).run(build_module(seed))
        for kernel in KERNELS:
            for jobs, batch_size in ((1, 1), (2, 8), (8, 32)):
                # cold in-memory cache (no snapshot)
                cold = FunctionMergingPass(
                    exploration_threshold=2, alignment_kernel=kernel,
                    jobs=jobs, batch_size=batch_size).run(build_module(seed))
                assert decisions(cold) == decisions(reference), \
                    ("cold", kernel, jobs, batch_size)
                # persisted: first run of this config saves, later runs of
                # *every* config warm-start from the shared snapshot
                persisted = FunctionMergingPass(
                    exploration_threshold=2, alignment_kernel=kernel,
                    jobs=jobs, batch_size=batch_size,
                    alignment_cache_path=path).run(build_module(seed))
                assert decisions(persisted) == decisions(reference), \
                    ("persisted", kernel, jobs, batch_size)

    def test_warm_runs_still_verify(self, tmp_path):
        from repro.ir import verify_or_raise
        path = str(tmp_path / "cache.json")
        FunctionMergingPass(exploration_threshold=2,
                            alignment_cache_path=path).run(build_module(9))
        module = build_module(9)
        FunctionMergingPass(exploration_threshold=2,
                            alignment_cache_path=path).run(module)
        verify_or_raise(module)


class TestCrossKernelTransfer:
    """The cache key has no kernel component: entries computed by one keyed
    kernel satisfy lookups from every other (they are bit-identical by
    construction)."""

    def test_banded_run_hits_entries_from_sequential_run(self, tmp_path):
        path = str(tmp_path / "cache.json")
        first = FunctionMergingPass(
            exploration_threshold=2, alignment_kernel="needleman-wunsch",
            alignment_cache_path=path).run(build_module())
        second = FunctionMergingPass(
            exploration_threshold=2, alignment_kernel="nw-banded",
            alignment_cache_path=path).run(build_module())
        assert decisions(second) == decisions(first)
        assert second.scheduler_stats["align_cache_cross_run_hits"] > 0
        assert hit_rate(second) >= 0.9

    @pytest.mark.skipif(not numpy_available(), reason="requires numpy")
    def test_numpy_run_hits_entries_from_sequential_run(self, tmp_path):
        path = str(tmp_path / "cache.json")
        first = FunctionMergingPass(
            exploration_threshold=2, alignment_kernel="needleman-wunsch",
            alignment_cache_path=path).run(build_module())
        second = FunctionMergingPass(
            exploration_threshold=2, alignment_kernel="nw-numpy",
            alignment_cache_path=path).run(build_module())
        assert decisions(second) == decisions(first)
        assert second.scheduler_stats["align_cache_cross_run_hits"] > 0
        assert second.scheduler_stats["align_cache_misses"] == 0

    @pytest.mark.skipif(not native_available(),
                        reason="requires the native extension")
    def test_native_run_hits_entries_from_sequential_run(self, tmp_path):
        path = str(tmp_path / "cache.json")
        first = FunctionMergingPass(
            exploration_threshold=2, alignment_kernel="needleman-wunsch",
            alignment_cache_path=path).run(build_module())
        second = FunctionMergingPass(
            exploration_threshold=2, alignment_kernel="nw-native",
            alignment_cache_path=path).run(build_module())
        assert decisions(second) == decisions(first)
        assert second.scheduler_stats["align_cache_cross_run_hits"] > 0
        assert second.scheduler_stats["align_cache_misses"] == 0

    def test_in_memory_transfer_between_kernel_stages(self):
        # stage-level variant: two AlignmentStage instances with different
        # kernels sharing one cache - the second never runs its DP
        from repro.core.engine.align_cache import AlignmentCache
        from repro.core.engine.stages import AlignmentStage, LinearizeStage
        from tests.helpers import make_binary_chain_function

        module = Module("xkernel")
        linearize = LinearizeStage()
        cache = AlignmentCache()
        f = make_binary_chain_function(module, "f", ["add", "mul", "xor"])
        g = make_binary_chain_function(module, "g", ["add", "shl", "xor"])
        lf, lg = linearize.get(f), linearize.get(g)

        sequential = AlignmentStage(kernel="needleman-wunsch", cache=cache)
        banded = AlignmentStage(kernel="nw-banded", cache=cache)
        want = sequential.align_pair(lf, lg)
        assert cache.misses == 1 and cache.hits == 0
        got = banded.align_pair(lf, lg)
        assert cache.hits == 1 and cache.misses == 1
        assert got.score == want.score
        assert [(e.left, e.right) for e in got.entries] \
            == [(e.left, e.right) for e in want.entries]


class TestAutosave:
    """Debounced background snapshots: put-count and time triggers, the
    non-stacking flush guard, and crash durability (a killed process leaves
    the last autosaved snapshot loadable)."""

    def test_put_threshold_triggers_an_autosave(self, tmp_path):
        path = str(tmp_path / "auto.json")
        cache = AlignmentCache(autosave_path=path, save_every_n_puts=4)
        for index in range(4):
            cache.put(_digest_key(index, index + 1), "mmmm", 7)
        assert cache.autosaves == 1
        assert os.path.exists(path)
        warm = AlignmentCache()
        assert warm.load(path) == 4
        assert warm.contains(_digest_key(0, 1))
        # below the threshold nothing is written
        cache.put(_digest_key(9, 10), "mmmm", 7)
        assert cache.autosaves == 1

    def test_forced_flush_writes_pending_entries(self, tmp_path):
        path = str(tmp_path / "auto.json")
        cache = AlignmentCache(autosave_path=path, save_every_n_puts=1000)
        cache.put(_digest_key(1, 2), "mmmm", 5)
        assert not os.path.exists(path)  # debounced: not due yet
        assert cache.autosave_flush(force=True)
        assert AlignmentCache().load(path) == 1
        # nothing new pending: a second forced flush is a no-op
        assert not cache.autosave_flush(force=True)
        assert cache.autosaves == 1

    def test_time_based_flush(self, tmp_path):
        path = str(tmp_path / "auto.json")
        cache = AlignmentCache(autosave_path=path, save_every_n_puts=None,
                               autosave_interval=0.0)  # always due
        cache.put(_digest_key(3, 4), "mmmm", 5)
        assert cache.autosave_flush()
        assert AlignmentCache().load(path) == 1

    def test_disable_autosave_stops_writing(self, tmp_path):
        path = str(tmp_path / "auto.json")
        cache = AlignmentCache(autosave_path=path, save_every_n_puts=1)
        cache.put(_digest_key(1, 2), "mmmm", 5)
        assert cache.autosaves == 1
        cache.disable_autosave()
        cache.put(_digest_key(2, 3), "mmmm", 5)
        assert cache.autosaves == 1

    def test_autosaves_surface_in_stats(self, tmp_path):
        path = str(tmp_path / "auto.json")
        cache = AlignmentCache(autosave_path=path, save_every_n_puts=2)
        for index in range(4):
            cache.put(_digest_key(index, index + 1), "mmmm", 7)
        assert cache.stats_dict()["align_cache_autosaves"] == 2

    def test_killed_process_leaves_a_loadable_snapshot(self, tmp_path):
        import signal
        import subprocess
        import sys
        import textwrap
        path = str(tmp_path / "auto.json")
        # the child autosaves every 8 puts, reports each flush on stdout,
        # then hangs forever; SIGKILL it mid-life and load what it left
        child = textwrap.dedent(f"""
            import sys
            from repro.core.engine.align_cache import AlignmentCache
            cache = AlignmentCache(autosave_path={path!r},
                                   save_every_n_puts=8)
            for index in range(32):
                key = (bytes([index] * 16), bytes([index + 1] * 16),
                       (1, -1, -1))
                cache.put(key, "mmmm", 7)
            print("flushed", cache.autosaves, flush=True)
            sys.stdin.read()  # hang until killed
        """)
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [os.path.join(os.path.dirname(__file__), "..", "..", "src")]
            + env.get("PYTHONPATH", "").split(os.pathsep))
        proc = subprocess.Popen([sys.executable, "-c", child], env=env,
                                stdin=subprocess.PIPE,
                                stdout=subprocess.PIPE)
        try:
            line = proc.stdout.readline().decode()
            assert line.startswith("flushed 4"), line
            proc.send_signal(signal.SIGKILL)
        finally:
            proc.kill()
            proc.wait()
        warm = AlignmentCache()
        assert warm.load(path) == 32
        assert warm.contains((bytes([0] * 16), bytes([1] * 16), (1, -1, -1)))
