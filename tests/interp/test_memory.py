"""Tests for the interpreter's byte-addressable memory model."""

import pytest

from repro.interp.memory import Memory, MemoryError_
from repro.ir import types as ty


class TestAllocation:
    def test_allocations_are_disjoint(self):
        memory = Memory()
        a = memory.allocate(16)
        b = memory.allocate(16)
        assert a != b
        assert abs(a - b) >= 16

    def test_zero_initialised(self):
        memory = Memory()
        address = memory.allocate(8)
        assert memory.read_bytes(address, 8) == b"\x00" * 8

    def test_allocate_type_uses_type_size(self):
        memory = Memory()
        address = memory.allocate_type(ty.struct([ty.I32, ty.DOUBLE], name="s"))
        assert memory.allocation_size(address) == 12

    def test_null_access_rejected(self):
        memory = Memory()
        with pytest.raises(MemoryError_):
            memory.read_bytes(0, 4)
        with pytest.raises(MemoryError_):
            memory.write_bytes(0, b"\x01")


class TestTypedAccess:
    def test_int_roundtrip(self):
        memory = Memory()
        address = memory.allocate(8)
        memory.store(address, ty.I32, 0xDEADBEEF)
        assert memory.load(address, ty.I32) == 0xDEADBEEF

    def test_int_wraps_to_width(self):
        memory = Memory()
        address = memory.allocate(1)
        memory.store(address, ty.I8, 300)
        assert memory.load(address, ty.I8) == 300 & 0xFF

    def test_float_roundtrip(self):
        memory = Memory()
        address = memory.allocate(8)
        memory.store(address, ty.DOUBLE, 3.25)
        assert memory.load(address, ty.DOUBLE) == 3.25
        memory.store(address, ty.FLOAT, 1.5)
        assert memory.load(address, ty.FLOAT) == 1.5

    def test_pointer_roundtrip(self):
        memory = Memory()
        address = memory.allocate(8)
        target = memory.allocate(4)
        memory.store(address, ty.pointer(ty.I32), target)
        assert memory.load(address, ty.pointer(ty.I32)) == target

    def test_adjacent_fields_do_not_clobber(self):
        memory = Memory()
        base = memory.allocate(12)
        memory.store(base, ty.I32, 7)
        memory.store(base + 4, ty.I32, 9)
        memory.store(base + 8, ty.I32, 11)
        assert memory.load(base, ty.I32) == 7
        assert memory.load(base + 4, ty.I32) == 9
        assert memory.load(base + 8, ty.I32) == 11

    def test_bit_level_aliasing_between_int_and_float(self):
        memory = Memory()
        address = memory.allocate(4)
        memory.store(address, ty.FLOAT, 1.0)
        as_int = memory.load(address, ty.I32)
        assert as_int == 0x3F800000  # IEEE-754 encoding of 1.0f
