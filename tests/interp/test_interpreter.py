"""Tests for the IR interpreter."""

import pytest

from repro.ir import IRBuilder, Module
from repro.ir import types as ty
from repro.ir import values as vals
from repro.interp import Interpreter, InterpreterError, IRException, Timeout, standard_externals

from tests.helpers import make_accumulator_function, make_binary_chain_function


class TestArithmetic:
    def _unary_int_fn(self, opcode, a, b, bits=32):
        module = Module()
        function = module.create_function("f", ty.function_type(ty.int_type(bits), []),
                                          linkage="external")
        builder = IRBuilder(function.append_block("entry"))
        builder.ret(builder.binary(opcode, vals.const_int(a, bits), vals.const_int(b, bits)))
        return Interpreter(module).run("f", [])

    def test_integer_ops(self):
        assert self._unary_int_fn("add", 7, 5) == 12
        assert self._unary_int_fn("sub", 7, 5) == 2
        assert self._unary_int_fn("mul", 7, 5) == 35
        assert self._unary_int_fn("and", 0b1100, 0b1010) == 0b1000
        assert self._unary_int_fn("or", 0b1100, 0b1010) == 0b1110
        assert self._unary_int_fn("xor", 0b1100, 0b1010) == 0b0110
        assert self._unary_int_fn("shl", 3, 2) == 12
        assert self._unary_int_fn("lshr", 16, 2) == 4

    def test_signed_division_and_remainder(self):
        assert self._unary_int_fn("sdiv", -7, 2) == (-3) & 0xFFFFFFFF
        assert self._unary_int_fn("srem", -7, 2) == (-1) & 0xFFFFFFFF
        assert self._unary_int_fn("udiv", 7, 2) == 3
        assert self._unary_int_fn("urem", 7, 2) == 1

    def test_division_by_zero_raises(self):
        with pytest.raises(InterpreterError):
            self._unary_int_fn("sdiv", 1, 0)

    def test_overflow_wraps(self):
        assert self._unary_int_fn("add", 0xFFFFFFFF, 1) == 0
        assert self._unary_int_fn("mul", 1 << 31, 2) == 0

    def test_ashr_sign_extends(self):
        assert self._unary_int_fn("ashr", -8, 1) == (-4) & 0xFFFFFFFF

    def test_float_ops(self):
        module = Module()
        function = module.create_function("f", ty.function_type(ty.DOUBLE, [ty.DOUBLE, ty.DOUBLE]),
                                          linkage="external")
        builder = IRBuilder(function.append_block("entry"))
        a, b = function.arguments
        builder.ret(builder.fdiv(builder.fmul(builder.fadd(a, b), b), vals.const_float(2.0)))
        assert Interpreter(module).run("f", [1.0, 3.0]) == pytest.approx(6.0)

    def test_icmp_predicates(self):
        module = Module()
        function = module.create_function("f", ty.function_type(ty.I1, [ty.I32, ty.I32]),
                                          linkage="external")
        builder = IRBuilder(function.append_block("entry"))
        builder.ret(builder.icmp("slt", function.arguments[0], function.arguments[1]))
        interp = Interpreter(module)
        assert interp.run("f", [1, 2]) == 1
        assert interp.run("f", [2, 1]) == 0
        assert interp.run("f", [(-1) & 0xFFFFFFFF, 1]) == 1  # signed view of -1

    def test_select_and_casts(self):
        module = Module()
        function = module.create_function("f", ty.function_type(ty.I64, [ty.I32]),
                                          linkage="external")
        builder = IRBuilder(function.append_block("entry"))
        cond = builder.icmp("sgt", function.arguments[0], vals.const_int(0))
        wide = builder.sext(function.arguments[0], ty.I64)
        chosen = builder.select(cond, wide, vals.const_int(0, 64))
        builder.ret(chosen)
        interp = Interpreter(module)
        assert interp.run("f", [5]) == 5
        assert interp.run("f", [(-5) & 0xFFFFFFFF]) == 0


class TestControlFlowAndMemory:
    def test_loop_accumulator(self):
        module = Module()
        make_accumulator_function(module, "acc")
        assert Interpreter(module).run("acc", [5]) == 0 + 1 + 2 + 3 + 4

    def test_branchy_function(self):
        module = Module()
        make_binary_chain_function(module, "chain", ["add"], constant=2)
        interp = Interpreter(module)
        assert interp.run("chain", [3, 4]) == 14
        assert interp.run("chain", [-10 & 0xFFFFFFFF, 1]) == 18  # negated branch

    def test_gep_struct_and_array(self):
        module = Module()
        node = ty.struct([ty.I32, ty.DOUBLE], name="node")
        function = module.create_function("f", ty.function_type(ty.DOUBLE, []),
                                          linkage="external")
        builder = IRBuilder(function.append_block("entry"))
        array_slot = builder.alloca(ty.array(node, 3))
        second = builder.gep(ty.array(node, 3), array_slot,
                             [vals.const_int(0, 64), vals.const_int(1, 64)],
                             result_type=ty.pointer(node))
        field = builder.gep(node, second, [vals.const_int(0, 64), vals.const_int(1, 32)],
                            result_type=ty.pointer(ty.DOUBLE))
        builder.store(vals.const_float(2.5), field)
        builder.ret(builder.load(field))
        assert Interpreter(module).run("f", []) == 2.5

    def test_switch_dispatch(self):
        module = Module()
        function = module.create_function("f", ty.function_type(ty.I32, [ty.I32]),
                                          linkage="external")
        entry = function.append_block("entry")
        default = function.append_block("default")
        one = function.append_block("one")
        two = function.append_block("two")
        builder = IRBuilder(entry)
        builder.switch(function.arguments[0], default,
                       [(vals.const_int(1), one), (vals.const_int(2), two)])
        IRBuilder(default).ret(vals.const_int(-1))
        IRBuilder(one).ret(vals.const_int(100))
        IRBuilder(two).ret(vals.const_int(200))
        interp = Interpreter(module)
        assert interp.run("f", [1]) == 100
        assert interp.run("f", [2]) == 200
        assert interp.run("f", [9]) == (-1) & 0xFFFFFFFF

    def test_phi_selection(self):
        module = Module()
        function = module.create_function("f", ty.function_type(ty.I32, [ty.I32]),
                                          linkage="external")
        entry = function.append_block("entry")
        left = function.append_block("left")
        right = function.append_block("right")
        join = function.append_block("join")
        builder = IRBuilder(entry)
        cond = builder.icmp("sgt", function.arguments[0], vals.const_int(0))
        builder.cond_br(cond, left, right)
        IRBuilder(left).br(join)
        IRBuilder(right).br(join)
        join_builder = IRBuilder(join)
        phi = join_builder.phi(ty.I32)
        phi.add_incoming(vals.const_int(1), left)
        phi.add_incoming(vals.const_int(2), right)
        join_builder.ret(phi)
        interp = Interpreter(module)
        assert interp.run("f", [5]) == 1
        assert interp.run("f", [0]) == 2

    def test_fuel_limit(self):
        module = Module()
        function = module.create_function("spin", ty.function_type(ty.VOID, []),
                                          linkage="external")
        block = function.append_block("entry")
        IRBuilder(block).br(block)
        with pytest.raises(Timeout):
            Interpreter(module, fuel=1000).run("spin", [])

    def test_unreachable_raises(self):
        module = Module()
        function = module.create_function("f", ty.function_type(ty.VOID, []),
                                          linkage="external")
        IRBuilder(function.append_block("entry")).unreachable()
        with pytest.raises(InterpreterError):
            Interpreter(module).run("f", [])


class TestCallsAndExceptions:
    def test_direct_call(self):
        module = Module()
        callee = module.create_function("callee", ty.function_type(ty.I32, [ty.I32]))
        builder = IRBuilder(callee.append_block("entry"))
        builder.ret(builder.mul(callee.arguments[0], vals.const_int(3)))
        caller = module.create_function("caller", ty.function_type(ty.I32, [ty.I32]),
                                        linkage="external")
        builder = IRBuilder(caller.append_block("entry"))
        builder.ret(builder.call(callee, [caller.arguments[0]]))
        assert Interpreter(module).run("caller", [7]) == 21

    def test_external_call_registered(self):
        module = Module()
        ext = module.create_function("twice", ty.function_type(ty.I32, [ty.I32]),
                                     linkage="external")
        caller = module.create_function("caller", ty.function_type(ty.I32, [ty.I32]),
                                        linkage="external")
        builder = IRBuilder(caller.append_block("entry"))
        builder.ret(builder.call(ext, [caller.arguments[0]]))
        interp = Interpreter(module, {"twice": lambda i, args: args[0] * 2})
        assert interp.run("caller", [21]) == 42

    def test_unresolved_external_raises(self):
        module = Module()
        ext = module.create_function("mystery", ty.function_type(ty.I32, []),
                                     linkage="external")
        caller = module.create_function("caller", ty.function_type(ty.I32, []),
                                        linkage="external")
        builder = IRBuilder(caller.append_block("entry"))
        builder.ret(builder.call(ext, []))
        with pytest.raises(InterpreterError):
            Interpreter(module).run("caller", [])

    def test_standard_externals_malloc(self):
        module = Module()
        malloc = module.create_function("mymalloc",
                                        ty.function_type(ty.pointer(ty.I8), [ty.I64]),
                                        linkage="external")
        function = module.create_function("f", ty.function_type(ty.I32, []),
                                          linkage="external")
        builder = IRBuilder(function.append_block("entry"))
        raw = builder.call(malloc, [vals.const_int(8, 64)])
        typed = builder.bitcast(raw, ty.pointer(ty.I32))
        builder.store(vals.const_int(99), typed)
        builder.ret(builder.load(typed))
        interp = Interpreter(module, standard_externals())
        assert interp.run("f", []) == 99

    def test_invoke_normal_and_unwind_paths(self):
        module = Module()
        thrower = module.create_function("__throw_exception",
                                         ty.function_type(ty.VOID, [ty.I32]),
                                         linkage="external")
        safe = module.create_function("safe", ty.function_type(ty.VOID, [ty.I32]),
                                      linkage="external")
        function = module.create_function("f", ty.function_type(ty.I32, [ty.I1]),
                                          linkage="external")
        entry = function.append_block("entry")
        do_throw = function.append_block("throw")
        normal = function.append_block("normal")
        landing = function.append_block("landing")
        builder = IRBuilder(entry)
        builder.cond_br(function.arguments[0], do_throw, normal)
        throw_builder = IRBuilder(do_throw)
        throw_builder.invoke(thrower, [vals.const_int(7)], normal, landing)
        IRBuilder(normal).ret(vals.const_int(1))
        landing_builder = IRBuilder(landing)
        landing_builder.landingpad()
        landing_builder.ret(vals.const_int(2))
        externals = standard_externals()
        externals["safe"] = lambda i, args: None
        interp = Interpreter(module, externals)
        assert interp.run("f", [0]) == 1
        assert interp.run("f", [1]) == 2

    def test_profile_collection(self):
        module = Module()
        make_accumulator_function(module, "acc")
        interp = Interpreter(module)
        interp.run("acc", [10])
        profile = interp.profile.for_function("acc")
        assert profile.call_count == 1
        assert profile.dynamic_instructions > 10
        interp.profile.normalize()
        assert profile.relative_weight == pytest.approx(1.0)
