"""End-to-end integration tests across the whole stack.

These exercise the full path the README advertises: mini-C source ->
IR -> -Os-style cleanup -> function merging (all three techniques) ->
size measurement -> execution, checking both the paper's qualitative claims
and semantic preservation.
"""

import pytest

from repro.baselines import IdenticalFunctionMergingPass, StructuralFunctionMergingPass
from repro.core import FunctionMergingPass
from repro.evaluation import compile_module
from repro.frontend import compile_source
from repro.interp import Interpreter, standard_externals
from repro.ir import verify_or_raise
from repro.targets import get_target
from repro.workloads import build_spec_benchmark

PROGRAM = """
// a small "templated" program: three families of similar functions
struct vec { int x; int y; int z; };

int dot_scaled(struct vec *a, struct vec *b, int scale) {
    return (a->x * b->x + a->y * b->y + a->z * b->z) * scale;
}

int dot_offset(struct vec *a, struct vec *b, int offset) {
    return a->x * b->x + a->y * b->y + a->z * b->z + offset;
}

int clamp_int(int v, int lo, int hi) {
    if (v < lo) return lo;
    if (v > hi) return hi;
    return v;
}

long clamp_long(long v, long lo, long hi) {
    if (v < lo) return lo;
    if (v > hi) return hi;
    return v;
}

int checksum(int *data, int n) {
    int acc = 7;
    for (int i = 0; i < n; i++) {
        acc = acc * 31 + data[i];
        acc = clamp_int(acc, -100000, 100000);
    }
    return acc;
}

int main(int n) {
    struct vec a; struct vec b;
    a.x = n; a.y = n + 1; a.z = 2;
    b.x = 3; b.y = 4; b.z = 5;
    int data[6];
    for (int i = 0; i < 6; i++) data[i] = i * n;
    int total = dot_scaled(&a, &b, 2) + dot_offset(&a, &b, 9);
    total = total + checksum(data, 6) + (int)clamp_long(total, 0, 500);
    return clamp_int(total, -100000, 100000);
}
"""

INPUTS = [[0], [1], [7], [42]]


def _reference_results():
    module = compile_source(PROGRAM)
    interp = Interpreter(module, standard_externals())
    return [interp.run("main", args) for args in INPUTS]


class TestMiniCProgramEndToEnd:
    def test_fmsa_pass_preserves_program_behaviour(self):
        expected = _reference_results()
        module = compile_source(PROGRAM)
        target = get_target("x86-64")
        before = target.module_cost(module)
        report = FunctionMergingPass(target, exploration_threshold=10).run(module)
        verify_or_raise(module)
        after = target.module_cost(module)
        assert report.merge_count >= 1
        assert after < before
        interp = Interpreter(module, standard_externals())
        assert [interp.run("main", args) for args in INPUTS] == expected

    def test_all_three_techniques_keep_semantics(self):
        expected = _reference_results()
        for technique in ("identical", "soa", "fmsa"):
            module = compile_source(PROGRAM)
            if technique == "identical":
                IdenticalFunctionMergingPass().run(module)
            elif technique == "soa":
                StructuralFunctionMergingPass().run(module)
            else:
                FunctionMergingPass().run(module)
            verify_or_raise(module)
            interp = Interpreter(module, standard_externals())
            assert [interp.run("main", args) for args in INPUTS] == expected, technique

    def test_fmsa_merges_more_than_baselines_on_this_program(self):
        module_identical = compile_source(PROGRAM)
        module_soa = compile_source(PROGRAM)
        module_fmsa = compile_source(PROGRAM)
        identical = IdenticalFunctionMergingPass().run(module_identical).merge_count
        soa = StructuralFunctionMergingPass().run(module_soa).merge_count
        fmsa = FunctionMergingPass(exploration_threshold=10).run(module_fmsa).merge_count
        assert fmsa >= max(identical, soa)
        assert fmsa >= 1


class TestSyntheticBenchmarkEndToEnd:
    def test_pipeline_orders_techniques_as_in_figure10(self):
        sizes = {}
        for technique, kwargs in [("baseline", {}), ("identical", {}), ("soa", {}),
                                  ("fmsa", {"threshold": 1})]:
            generated = build_spec_benchmark("447.dealII", scale=0.05, cap=20)
            result = compile_module(generated.module, technique, **kwargs)
            sizes[result.technique] = result.size_after
            verify_or_raise(generated.module)
        assert sizes["identical"] <= sizes["baseline"]
        assert sizes["soa"] <= sizes["identical"]
        assert sizes["fmsa[t=1]"] < sizes["soa"]

    def test_module_verifies_after_every_technique(self):
        for technique in ("identical", "soa", "fmsa"):
            generated = build_spec_benchmark("471.omnetpp", scale=0.02, cap=14)
            compile_module(generated.module, technique)
            verify_or_raise(generated.module)
