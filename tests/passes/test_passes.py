"""Tests for the generic IR passes (DCE, SimplifyCFG, reg2mem, manager)."""

from repro.ir import IRBuilder, Module, verify_or_raise
from repro.ir import types as ty
from repro.ir import values as vals
from repro.interp import Interpreter
from repro.passes import (DeadCodeElimination, DeadFunctionElimination, Pass,
                          PassManager, RegToMem, SimplifyCFG, demote_phis)


class TestDeadCodeElimination:
    def test_removes_unused_pure_instruction(self):
        module = Module()
        function = module.create_function("f", ty.function_type(ty.I32, [ty.I32]))
        builder = IRBuilder(function.append_block("entry"))
        builder.add(function.arguments[0], vals.const_int(1))  # dead
        live = builder.mul(function.arguments[0], vals.const_int(2))
        builder.ret(live)
        assert DeadCodeElimination().run_on_function(function)
        opcodes = [i.opcode for i in function.instructions()]
        assert "add" not in opcodes and "mul" in opcodes

    def test_keeps_side_effecting_instructions(self):
        module = Module()
        function = module.create_function("f", ty.function_type(ty.VOID, [ty.I32]))
        builder = IRBuilder(function.append_block("entry"))
        slot = builder.alloca(ty.I32)
        builder.store(function.arguments[0], slot)
        builder.ret_void()
        DeadCodeElimination().run_on_function(function)
        opcodes = [i.opcode for i in function.instructions()]
        assert "store" in opcodes

    def test_cascading_removal(self):
        module = Module()
        function = module.create_function("f", ty.function_type(ty.I32, [ty.I32]))
        builder = IRBuilder(function.append_block("entry"))
        a = builder.add(function.arguments[0], vals.const_int(1))
        builder.mul(a, vals.const_int(2))  # dead, and makes `a` dead too
        builder.ret(function.arguments[0])
        DeadCodeElimination().run_on_function(function)
        assert function.instruction_count() == 1

    def test_reports_no_change(self):
        module = Module()
        function = module.create_function("f", ty.function_type(ty.I32, [ty.I32]))
        builder = IRBuilder(function.append_block("entry"))
        builder.ret(function.arguments[0])
        assert not DeadCodeElimination().run_on_function(function)


class TestDeadFunctionElimination:
    def test_removes_uncalled_internal_function(self):
        module = Module()
        dead = module.create_function("dead", ty.function_type(ty.VOID, []))
        IRBuilder(dead.append_block("entry")).ret_void()
        kept = module.create_function("kept", ty.function_type(ty.VOID, []),
                                      linkage="external")
        IRBuilder(kept.append_block("entry")).ret_void()
        removed = DeadFunctionElimination().run(module)
        assert removed == 1
        assert module.get_function("dead") is None
        assert module.get_function("kept") is not None

    def test_transitively_dead_functions_removed(self):
        module = Module()
        inner = module.create_function("inner", ty.function_type(ty.VOID, []))
        IRBuilder(inner.append_block("entry")).ret_void()
        outer = module.create_function("outer", ty.function_type(ty.VOID, []))
        builder = IRBuilder(outer.append_block("entry"))
        builder.call(inner, [])
        builder.ret_void()
        assert DeadFunctionElimination().run(module) == 2

    def test_called_function_kept(self):
        module = Module()
        callee = module.create_function("callee", ty.function_type(ty.VOID, []))
        IRBuilder(callee.append_block("entry")).ret_void()
        caller = module.create_function("caller", ty.function_type(ty.VOID, []),
                                        linkage="external")
        builder = IRBuilder(caller.append_block("entry"))
        builder.call(callee, [])
        builder.ret_void()
        assert DeadFunctionElimination().run(module) == 0


class TestSimplifyCFG:
    def test_removes_unreachable_block(self):
        module = Module()
        function = module.create_function("f", ty.function_type(ty.I32, []))
        builder = IRBuilder(function.append_block("entry"))
        builder.ret(vals.const_int(1))
        orphan = function.append_block("orphan")
        IRBuilder(orphan).ret(vals.const_int(2))
        assert SimplifyCFG().run_on_function(function)
        assert len(function.blocks) == 1

    def test_merges_straightline_chain(self):
        module = Module()
        function = module.create_function("f", ty.function_type(ty.I32, [ty.I32]))
        entry = function.append_block("entry")
        mid = function.append_block("mid")
        builder = IRBuilder(entry)
        a = builder.add(function.arguments[0], vals.const_int(1))
        builder.br(mid)
        mid_builder = IRBuilder(mid)
        mid_builder.ret(mid_builder.mul(a, vals.const_int(2)))
        SimplifyCFG().run_on_function(function)
        assert len(function.blocks) == 1
        verify_or_raise(function)

    def test_does_not_merge_block_with_multiple_predecessors(self):
        module = Module()
        function = module.create_function("f", ty.function_type(ty.I32, [ty.I32]))
        entry = function.append_block("entry")
        left = function.append_block("left")
        right = function.append_block("right")
        join = function.append_block("join")
        builder = IRBuilder(entry)
        cond = builder.icmp("sgt", function.arguments[0], vals.const_int(0))
        builder.cond_br(cond, left, right)
        IRBuilder(left).br(join)
        IRBuilder(right).br(join)
        IRBuilder(join).ret(vals.const_int(1))
        SimplifyCFG().run_on_function(function)
        assert join in function.blocks
        verify_or_raise(function)

    def test_preserves_semantics(self):
        module = Module()
        function = module.create_function("f", ty.function_type(ty.I32, [ty.I32]),
                                          linkage="external")
        entry = function.append_block("entry")
        mid = function.append_block("mid")
        builder = IRBuilder(entry)
        a = builder.mul(function.arguments[0], vals.const_int(3))
        builder.br(mid)
        mid_builder = IRBuilder(mid)
        mid_builder.ret(mid_builder.add(a, vals.const_int(7)))
        before = Interpreter(module).run("f", [5])
        SimplifyCFG().run_on_function(function)
        after = Interpreter(module).run("f", [5])
        assert before == after == 22


class TestRegToMem:
    def _function_with_phi(self):
        module = Module()
        function = module.create_function("f", ty.function_type(ty.I32, [ty.I32]),
                                          linkage="external")
        entry = function.append_block("entry")
        left = function.append_block("left")
        right = function.append_block("right")
        join = function.append_block("join")
        builder = IRBuilder(entry)
        cond = builder.icmp("sgt", function.arguments[0], vals.const_int(0))
        builder.cond_br(cond, left, right)
        IRBuilder(left).br(join)
        IRBuilder(right).br(join)
        join_builder = IRBuilder(join)
        phi = join_builder.phi(ty.I32, "p")
        phi.add_incoming(vals.const_int(10), left)
        phi.add_incoming(vals.const_int(20), right)
        join_builder.ret(join_builder.add(phi, function.arguments[0]))
        return module, function

    def test_phi_removed_and_semantics_preserved(self):
        module, function = self._function_with_phi()
        before_pos = Interpreter(module).run("f", [4])
        before_neg = Interpreter(module).run("f", [-4])
        assert RegToMem().run_on_function(function)
        assert not any(i.is_phi for i in function.instructions())
        verify_or_raise(function)
        assert Interpreter(module).run("f", [4]) == before_pos == 14
        masked = Interpreter(module).run("f", [-4]) & 0xFFFFFFFF
        assert masked == (before_neg & 0xFFFFFFFF) == (20 - 4) & 0xFFFFFFFF

    def test_noop_without_phis(self):
        module = Module()
        function = module.create_function("f", ty.function_type(ty.I32, [ty.I32]))
        IRBuilder(function.append_block("entry")).ret(function.arguments[0])
        assert not demote_phis(function)


class TestPassManager:
    def test_runs_passes_in_order_and_times_them(self):
        calls = []

        class Recorder(Pass):
            def __init__(self, name):
                self.name = name

            def run(self, module):
                calls.append(self.name)
                return self.name

        manager = PassManager([Recorder("first")])
        manager.add(Recorder("second"))
        results = manager.run(Module())
        assert calls == ["first", "second"]
        assert results == {"first": "first", "second": "second"}
        assert len(manager.timings) == 2
        assert manager.total_time() >= 0.0
