"""Tests for mini-C -> IR lowering, validated through the interpreter."""

import pytest

from repro.frontend import compile_source
from repro.frontend.lowering import LoweringError
from repro.ir import types as ty
from repro.ir import verify_or_raise
from repro.interp import Interpreter, standard_externals


def run(source, entry, args, externals=None):
    module = compile_source(source)
    verify_or_raise(module)
    interp = Interpreter(module, externals or standard_externals())
    return interp.run(entry, args)


class TestBasics:
    def test_arithmetic_and_return(self):
        assert run("int f(int a, int b) { return a * b + 2; }", "f", [3, 4]) == 14

    def test_no_phis_are_emitted(self):
        module = compile_source(
            "int f(int a) { int r; if (a > 0) r = 1; else r = 2; return r; }")
        assert not any(inst.is_phi for f in module.defined_functions()
                       for inst in f.instructions())

    def test_if_else(self):
        source = "int f(int a) { if (a > 10) return 1; else return 0; }"
        assert run(source, "f", [11]) == 1
        assert run(source, "f", [3]) == 0

    def test_while_loop(self):
        source = "int f(int n) { int s = 0; while (n > 0) { s = s + n; n = n - 1; } return s; }"
        assert run(source, "f", [5]) == 15

    def test_for_loop_with_break_continue(self):
        source = """
        int f(int n) {
          int s = 0;
          for (int i = 0; i < n; i++) {
            if (i == 3) continue;
            if (i == 7) break;
            s = s + i;
          }
          return s;
        }
        """
        assert run(source, "f", [100]) == 0 + 1 + 2 + 4 + 5 + 6

    def test_nested_calls_and_recursion(self):
        source = """
        int fib(int n) { if (n < 2) return n; return fib(n - 1) + fib(n - 2); }
        int main(int n) { return fib(n); }
        """
        assert run(source, "main", [10]) == 55

    def test_logical_operators_short_circuit(self):
        source = """
        extern int boom();
        int f(int a) { if (a > 0 && boom() > 0) return 1; return 0; }
        """
        # boom() must never be called when a <= 0
        externals = standard_externals()
        calls = []
        externals["boom"] = lambda i, args: calls.append(1) or 1
        assert run(source, "f", [0], externals) == 0
        assert calls == []
        assert run(source, "f", [1], externals) == 1
        assert calls == [1]

    def test_ternary_expression(self):
        assert run("int f(int a) { return a > 0 ? a : -a; }", "f", [-7]) == 7

    def test_unary_operators(self):
        assert run("int f(int a) { return !a; }", "f", [0]) == 1
        assert run("int f(int a) { return ~a; }", "f", [0]) == 0xFFFFFFFF
        assert run("int f(int a) { return -a; }", "f", [5]) == (-5) & 0xFFFFFFFF

    def test_compound_assignment_and_increment(self):
        source = "int f(int a) { int x = a; x += 3; x *= 2; x++; return x; }"
        assert run(source, "f", [4]) == 15


class TestTypesAndMemory:
    def test_float_double_conversions(self):
        source = "double f(float x, int n) { return x * n + 0.5; }"
        assert run(source, "f", [1.5, 4]) == pytest.approx(6.5)

    def test_pointer_argument_and_deref(self):
        source = "void store(int *p, int v) { *p = v * 2; } "
        module = compile_source(source)
        verify_or_raise(module)
        interp = Interpreter(module, standard_externals())
        address = interp.memory.allocate(4)
        interp.run("store", [address, 21])
        assert interp.memory.load(address, ty.I32) == 42

    def test_array_indexing(self):
        source = """
        int f(int n) {
          int buf[8];
          for (int i = 0; i < 8; i++) buf[i] = i * i;
          return buf[n];
        }
        """
        assert run(source, "f", [5]) == 25

    def test_struct_member_access(self):
        source = """
        struct pair { int a; int b; };
        int f(int x) {
          struct pair p;
          p.a = x; p.b = x * 2;
          return p.a + p.b;
        }
        """
        assert run(source, "f", [10]) == 30

    def test_struct_pointer_arrow(self):
        source = """
        struct pair { int a; int b; };
        int get(struct pair *p) { return p->a - p->b; }
        int f(int x) { struct pair p; p.a = x; p.b = 3; return get(&p); }
        """
        assert run(source, "f", [10]) == 7

    def test_pointer_arithmetic(self):
        source = """
        int f(int *base, int n) { int *p = base + n; return *p; }
        """
        module = compile_source(source)
        interp = Interpreter(module, standard_externals())
        base = interp.memory.allocate(40)
        interp.memory.store(base + 12, ty.I32, 77)
        assert interp.run("f", [base, 3]) == 77

    def test_sizeof(self):
        source = "long f() { return sizeof(double) + sizeof(int); }"
        assert run(source, "f", []) == 12

    def test_global_variable(self):
        source = "int counter = 5; int f(int x) { counter = counter + x; return counter; }"
        module = compile_source(source)
        interp = Interpreter(module, standard_externals())
        assert interp.run("f", [3]) == 8
        assert interp.run("f", [3]) == 11  # global persists across calls


class TestLinkageAndErrors:
    def test_internalize_marks_functions_internal_except_main(self):
        module = compile_source("int helper(int a) { return a; } int main() { return helper(1); }")
        assert module.get_function("helper").linkage == "internal"
        assert module.get_function("main").linkage == "external"

    def test_extern_functions_are_declarations(self):
        module = compile_source("extern int ext(int a); int f(int a) { return ext(a); }")
        assert module.get_function("ext").is_declaration

    def test_undeclared_variable_raises(self):
        with pytest.raises(LoweringError):
            compile_source("int f() { return mystery; }")

    def test_unknown_struct_member_raises(self):
        with pytest.raises(LoweringError):
            compile_source("struct p { int a; }; int f(struct p *x) { return x->b; }")

    def test_break_outside_loop_raises(self):
        with pytest.raises(LoweringError):
            compile_source("int f() { break; return 0; }")

    def test_verifier_clean_for_all_case_study_like_code(self):
        source = """
        struct item { int key; double weight; struct item *next; };
        extern struct item *alloc_item(long size);
        struct item *push(struct item *head, int key, double weight) {
            struct item *node = alloc_item(sizeof(struct item));
            node->key = key;
            node->weight = weight;
            node->next = head;
            return node;
        }
        double total(struct item *head) {
            double sum = 0.0;
            while (head != NULL) { sum = sum + head->weight; head = head->next; }
            return sum;
        }
        """
        module = compile_source(source)
        verify_or_raise(module)
        assert module.get_function("push").instruction_count() > 5
