"""Tests for the mini-C parser."""

import pytest

from repro.frontend import ast_nodes as ast
from repro.frontend.lexer import LexerError
from repro.frontend.parser import ParseError, parse


class TestDeclarations:
    def test_function_with_parameters(self):
        program = parse("int add(int a, int b) { return a + b; }")
        assert len(program.functions) == 1
        function = program.functions[0]
        assert function.name == "add"
        assert [p.name for p in function.parameters] == ["a", "b"]
        assert function.return_type.base == "int"

    def test_extern_declaration(self):
        program = parse("extern double sqrt(double x);")
        assert program.functions[0].body is None

    def test_void_parameter_list(self):
        program = parse("int f(void) { return 1; }")
        assert program.functions[0].parameters == []

    def test_struct_declaration(self):
        program = parse("struct point { int x; int y; };")
        struct = program.structs[0]
        assert struct.name == "point"
        assert [f.name for f in struct.fields] == ["x", "y"]

    def test_pointer_and_struct_types(self):
        program = parse("struct node { struct node *next; int v; };"
                        "struct node *head(struct node *n) { return n; }")
        function = program.functions[0]
        assert function.return_type.base == "struct node"
        assert function.return_type.pointer_depth == 1

    def test_global_variable(self):
        program = parse("int counter = 3; double table[8];")
        assert program.globals[0].name == "counter"
        assert isinstance(program.globals[0].initializer, ast.IntLiteral)
        assert program.globals[1].var_type.array_length == 8

    def test_unsigned_and_long(self):
        program = parse("unsigned int f(long x) { return x; }")
        assert program.functions[0].parameters[0].param_type.base == "long"


class TestStatements:
    def _body(self, source):
        return parse(f"int f(int a, int b) {{ {source} }}").functions[0].body.statements

    def test_if_else(self):
        statements = self._body("if (a > b) return a; else return b;")
        assert isinstance(statements[0], ast.IfStmt)
        assert statements[0].else_branch is not None

    def test_while_and_for(self):
        statements = self._body("while (a) a = a - 1; for (int i = 0; i < b; i++) a = a + i;")
        assert isinstance(statements[0], ast.WhileStmt)
        assert isinstance(statements[1], ast.ForStmt)
        assert isinstance(statements[1].init, ast.VarDecl)

    def test_break_continue(self):
        statements = self._body("while (1) { if (a) break; continue; }")
        body = statements[0].body.statements
        assert isinstance(body[0].then_branch, ast.BreakStmt)
        assert isinstance(body[1], ast.ContinueStmt)

    def test_local_declaration_with_array(self):
        statements = self._body("int buffer[16]; buffer[0] = a;")
        assert isinstance(statements[0], ast.VarDecl)
        assert statements[0].var_type.array_length == 16

    def test_return_void(self):
        program = parse("void f() { return; }")
        assert program.functions[0].body.statements[0].value is None


class TestExpressions:
    def _expr(self, source):
        program = parse(f"int f(int a, int b) {{ return {source}; }}")
        return program.functions[0].body.statements[0].value

    def test_precedence(self):
        expr = self._expr("a + b * 2")
        assert isinstance(expr, ast.BinaryOp) and expr.op == "+"
        assert isinstance(expr.right, ast.BinaryOp) and expr.right.op == "*"

    def test_comparison_and_logical(self):
        expr = self._expr("a < b && b < 10")
        assert expr.op == "&&"
        assert expr.left.op == "<"

    def test_unary_and_cast(self):
        expr = self._expr("-(int)b")
        assert isinstance(expr, ast.UnaryOp) and expr.op == "-"
        assert isinstance(expr.operand, ast.CastExpr)

    def test_ternary(self):
        expr = self._expr("a ? b : 0")
        assert isinstance(expr, ast.Conditional)

    def test_call_with_arguments(self):
        expr = self._expr("max(a, b + 1)")
        assert isinstance(expr, ast.CallExpr)
        assert expr.callee == "max"
        assert len(expr.args) == 2

    def test_member_and_index(self):
        program = parse("""
        struct point { int x; int y; };
        int f(struct point *p, int *v) { return p->x + v[2]; }
        """)
        expr = program.functions[0].body.statements[0].value
        assert isinstance(expr.left, ast.MemberExpr) and expr.left.through_pointer
        assert isinstance(expr.right, ast.IndexExpr)

    def test_assignment_and_compound_assignment(self):
        statements = parse("int f(int a) { a = 3; a += 2; return a; }").functions[0].body.statements
        assert isinstance(statements[0].expression, ast.Assignment)
        assert statements[1].expression.op == "+="

    def test_sizeof(self):
        expr = self._expr("sizeof(double)")
        assert isinstance(expr, ast.SizeofExpr)

    def test_increment_forms(self):
        statements = parse("int f(int a) { a++; ++a; return a; }").functions[0].body.statements
        assert statements[0].expression.postfix
        assert not statements[1].expression.postfix


class TestErrors:
    def test_missing_semicolon(self):
        with pytest.raises(ParseError):
            parse("int f() { return 1 }")

    def test_unbalanced_parentheses(self):
        with pytest.raises(ParseError):
            parse("int f() { return (1; }")

    def test_unknown_character_reported_by_lexer(self):
        with pytest.raises(LexerError):
            parse("int f() { @ }")

    def test_incomplete_expression(self):
        with pytest.raises(ParseError):
            parse("int f() { return 1 + ; }")
