"""Tests for the mini-C lexer."""

import pytest

from repro.frontend.lexer import LexerError, tokenize


def kinds(source):
    return [t.kind for t in tokenize(source)]


def texts(source):
    return [t.text for t in tokenize(source) if t.kind != "eof"]


class TestTokens:
    def test_identifiers_and_keywords(self):
        tokens = tokenize("int foo; return bar;")
        assert tokens[0].kind == "keyword" and tokens[0].text == "int"
        assert tokens[1].kind == "ident" and tokens[1].text == "foo"
        assert tokens[3].is_keyword("return")

    def test_integer_literals(self):
        tokens = tokenize("42 0x1F 7L")
        assert tokens[0].value == 42
        assert tokens[1].value == 31
        assert tokens[2].value == 7

    def test_float_literals(self):
        tokens = tokenize("3.25 1e3 2.5f")
        assert tokens[0].kind == "float" and tokens[0].value == 3.25
        assert tokens[1].kind == "float" and tokens[1].value == 1000.0
        assert tokens[2].kind == "float" and tokens[2].value == 2.5

    def test_string_and_char_literals(self):
        tokens = tokenize('"hi\\n" \'a\'')
        assert tokens[0].kind == "string" and tokens[0].value == "hi\n"
        assert tokens[1].kind == "char" and tokens[1].value == ord("a")

    def test_operators_maximal_munch(self):
        assert texts("a->b <<= 1 && c >= d") == ["a", "->", "b", "<<=", "1", "&&",
                                                 "c", ">=", "d"]

    def test_comments_and_preprocessor_skipped(self):
        source = """
        #include <stdio.h>
        // line comment
        /* block
           comment */
        int x;
        """
        assert texts(source) == ["int", "x", ";"]

    def test_line_and_column_tracking(self):
        tokens = tokenize("int\n  foo;")
        assert tokens[0].line == 1
        assert tokens[1].line == 2
        assert tokens[1].column == 3

    def test_unterminated_string_raises(self):
        with pytest.raises(LexerError):
            tokenize('"not closed')

    def test_unexpected_character_raises(self):
        with pytest.raises(LexerError):
            tokenize("int a = 3 @ 4;")

    def test_eof_token_always_last(self):
        assert kinds("")[-1] == "eof"
        assert kinds("int x;")[-1] == "eof"
