"""Tests for the target code-size cost models."""

import pytest

from repro.ir import IRBuilder, Module
from repro.ir import types as ty
from repro.ir import values as vals
from repro.targets import ARM_THUMB, X86_64, available_targets, get_target


def _simple_module():
    module = Module()
    function = module.create_function("f", ty.function_type(ty.I32, [ty.I32, ty.I32]))
    builder = IRBuilder(function.append_block("entry"))
    a, b = function.arguments
    builder.ret(builder.mul(builder.add(a, b), vals.const_int(3)))
    return module, function


class TestRegistry:
    def test_lookup_aliases(self):
        assert get_target("intel") is X86_64
        assert get_target("x86") is X86_64
        assert get_target("X86-64") is X86_64
        assert get_target("arm") is ARM_THUMB
        assert get_target("thumb") is ARM_THUMB

    def test_unknown_target(self):
        with pytest.raises(KeyError):
            get_target("riscv")

    def test_available_targets(self):
        assert set(available_targets()) >= {"x86-64", "arm-thumb"}


class TestCosts:
    def test_every_opcode_has_positive_cost(self):
        from repro.ir.instructions import ALL_OPCODES
        for model in (X86_64, ARM_THUMB):
            for opcode in ALL_OPCODES:
                assert model.opcode_costs.get(opcode, model.default_cost) >= 0

    def test_function_cost_includes_overhead(self):
        _, function = _simple_module()
        body = sum(X86_64.instruction_cost(i) for i in function.instructions())
        assert X86_64.function_cost(function) >= body + X86_64.function_overhead

    def test_declarations_are_free(self):
        module = Module()
        module.create_function("ext", ty.function_type(ty.VOID, []), linkage="external")
        assert X86_64.module_cost(module) == 0

    def test_module_cost_is_sum_of_functions(self):
        module, function = _simple_module()
        assert X86_64.module_cost(module) == X86_64.function_cost(function)

    def test_call_cost_grows_with_arguments(self):
        few = X86_64.call_site_cost(2)
        many = X86_64.call_site_cost(12)
        assert many > few

    def test_call_instruction_argument_overhead(self):
        module = Module()
        callee = module.create_function(
            "callee", ty.function_type(ty.VOID, [ty.I32] * 10), linkage="external")
        caller = module.create_function("caller", ty.function_type(ty.VOID, []))
        builder = IRBuilder(caller.append_block("entry"))
        call = builder.call(callee, [vals.const_int(i) for i in range(10)])
        builder.ret_void()
        assert X86_64.instruction_cost(call) > X86_64.opcode_costs["call"]

    def test_bitcasts_are_free_on_both_targets(self):
        module = Module()
        function = module.create_function("f", ty.function_type(ty.VOID, [ty.pointer(ty.I8)]))
        builder = IRBuilder(function.append_block("entry"))
        cast = builder.bitcast(function.arguments[0], ty.pointer(ty.I32))
        builder.ret_void()
        assert X86_64.instruction_cost(cast) == 0
        assert ARM_THUMB.instruction_cost(cast) == 0

    def test_targets_differ_in_relative_weights(self):
        # ARM Thumb encodes simple ALU ops in 2 bytes vs ~3 on x86-64
        assert ARM_THUMB.opcode_costs["add"] < X86_64.opcode_costs["add"]
        # selects are comparatively expensive on both
        assert ARM_THUMB.opcode_costs["select"] >= 4

    def test_switch_cost_grows_with_cases(self):
        module = Module()
        function = module.create_function("f", ty.function_type(ty.VOID, [ty.I32]))
        entry = function.append_block("entry")
        default = function.append_block("default")
        case_blocks = [function.append_block(f"case{i}") for i in range(4)]
        builder = IRBuilder(entry)
        builder.switch(function.arguments[0], default,
                       [(vals.const_int(i), block) for i, block in enumerate(case_blocks)])
        for block in [default] + case_blocks:
            IRBuilder(block).ret_void()
        switch = function.entry_block.terminator
        assert X86_64.instruction_cost(switch) > X86_64.opcode_costs["switch"]
