"""Every workload generator must emit verifier-clean IR.

Parametrized over all mibench benchmarks, all spec2006 benchmarks, all case
studies, and a synthetic suite config: both the classic verifier
(``verify_or_raise``) and verifier v2 accept each generated module with
zero errors.
"""

import pytest

from repro.analysis import errors_of, verify_module_v2
from repro.ir.verifier import verify_or_raise
from repro.workloads.case_studies import SOURCES, case_study_module
from repro.workloads.mibench import (build_mibench_benchmark,
                                     mibench_benchmark_names)
from repro.workloads.spec2006 import (build_spec_benchmark,
                                      spec_benchmark_names)
from repro.workloads.suites import BenchmarkConfig, build_benchmark_module


def _assert_clean(module):
    verify_or_raise(module)
    diags = verify_module_v2(module)
    assert errors_of(diags) == [], "\n".join(map(str, errors_of(diags)))


@pytest.mark.parametrize("name", mibench_benchmark_names())
def test_mibench_generators_are_verifier_clean(name):
    _assert_clean(build_mibench_benchmark(name).module)


@pytest.mark.parametrize("name", spec_benchmark_names())
def test_spec_generators_are_verifier_clean(name):
    _assert_clean(build_spec_benchmark(name).module)


@pytest.mark.parametrize("name", sorted(SOURCES))
def test_case_studies_are_verifier_clean(name):
    _assert_clean(case_study_module(name))


def test_synthetic_suite_is_verifier_clean():
    config = BenchmarkConfig(
        name="synthetic-validity", suite="synthetic", functions=24,
        avg_size=40, identical_share=0.25, structural_share=0.25,
        partial_share=0.25)
    _assert_clean(build_benchmark_module(config, scale=1.0, seed=3).module)
