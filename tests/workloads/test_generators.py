"""Tests for the synthetic function/module generators."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import functions_identical, structurally_similar
from repro.ir import Module, verify_or_raise
from repro.ir import types as ty
from repro.workloads import (FamilySpec, FunctionSpec, add_call_sites,
                             add_extra_instructions, add_guard_block, build_function,
                             clone_function, make_family, mutate_constants,
                             mutate_opcodes)


def _spec(seed=1, **kwargs):
    defaults = dict(name=f"gen{seed}", num_blocks=3, instructions_per_block=6, seed=seed)
    defaults.update(kwargs)
    return FunctionSpec(**defaults)


class TestBuildFunction:
    def test_generated_function_verifies(self):
        module = Module()
        function = build_function(module, _spec())
        verify_or_raise(function)

    def test_deterministic_given_seed(self):
        module1, module2 = Module("a"), Module("b")
        f1 = build_function(module1, _spec(seed=9))
        f2 = build_function(module2, _spec(seed=9))
        assert functions_identical(f1, f2)

    def test_different_seeds_differ(self):
        module = Module()
        f1 = build_function(module, _spec(seed=1, name="x"))
        f2 = build_function(module, _spec(seed=2, name="y"))
        assert not functions_identical(f1, f2)

    def test_size_scales_with_spec(self):
        module = Module()
        small = build_function(module, _spec(seed=3, name="small",
                                             num_blocks=2, instructions_per_block=4))
        large = build_function(module, _spec(seed=3, name="large",
                                             num_blocks=5, instructions_per_block=15))
        assert large.instruction_count() > small.instruction_count()

    def test_void_and_float_returns(self):
        module = Module()
        void_fn = build_function(module, _spec(seed=4, name="v", returns_void=True))
        float_fn = build_function(module, _spec(seed=4, name="fl", returns_float=True))
        assert void_fn.return_type.is_void
        assert float_fn.return_type == ty.DOUBLE

    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 10_000), st.integers(1, 5), st.integers(2, 12))
    def test_generated_functions_always_verify(self, seed, blocks, insts):
        module = Module()
        spec = FunctionSpec(name="prop", num_blocks=blocks,
                            instructions_per_block=insts, seed=seed)
        function = build_function(module, spec)
        verify_or_raise(function)
        assert function.instruction_count() >= blocks


class TestCloneAndMutate:
    def test_clone_is_identical_and_verifies(self):
        module = Module()
        base = build_function(module, _spec(seed=11))
        copy = clone_function(module, base, "copy")
        verify_or_raise(copy)
        assert functions_identical(base, copy)

    def test_clone_with_extra_params_changes_signature_only(self):
        module = Module()
        base = build_function(module, _spec(seed=11, name="b2"))
        extended = clone_function(module, base, "extended",
                                  extra_param_types=[ty.I64, ty.DOUBLE])
        assert len(extended.arguments) == len(base.arguments) + 2
        assert extended.instruction_count() == base.instruction_count()
        verify_or_raise(extended)

    def test_clone_with_param_permutation(self):
        module = Module()
        base = build_function(module, _spec(seed=12, name="b3"))
        order = list(range(len(base.arguments)))[::-1]
        permuted = clone_function(module, base, "permuted", param_permutation=order)
        assert [a.type for a in permuted.arguments] == \
            [a.type for a in base.arguments][::-1]
        verify_or_raise(permuted)

    def test_mutate_opcodes_keeps_structure(self):
        module = Module()
        base = build_function(module, _spec(seed=13, name="b4"))
        sibling = clone_function(module, base, "sib")
        changed = mutate_opcodes(sibling, random.Random(0), fraction=0.5)
        assert changed > 0
        verify_or_raise(sibling)
        assert structurally_similar(base, sibling)
        assert not functions_identical(base, sibling)

    def test_mutate_constants_keeps_structure(self):
        module = Module()
        base = build_function(module, _spec(seed=14, name="b5"))
        sibling = clone_function(module, base, "sib2")
        mutate_constants(sibling, random.Random(0), fraction=0.8)
        verify_or_raise(sibling)
        assert structurally_similar(base, sibling)

    def test_add_guard_block_breaks_cfg_isomorphism(self):
        module = Module()
        base = build_function(module, _spec(seed=15, name="b6"))
        guarded = clone_function(module, base, "guarded")
        add_guard_block(module, guarded, random.Random(0))
        verify_or_raise(guarded)
        assert len(guarded.blocks) == len(base.blocks) + 2
        assert not structurally_similar(base, guarded)

    def test_add_extra_instructions_breaks_block_sizes(self):
        module = Module()
        base = build_function(module, _spec(seed=16, name="b7"))
        padded = clone_function(module, base, "padded")
        add_extra_instructions(padded, random.Random(0), count=3)
        verify_or_raise(padded)
        assert padded.instruction_count() == base.instruction_count() + 3


class TestFamiliesAndCallers:
    def test_make_family_produces_requested_members(self):
        module = Module()
        members = make_family(module, _spec(seed=20, name="fam"),
                              FamilySpec(identical=1, structural=1, partial=1),
                              random.Random(0))
        assert len(members) == 4
        verify_or_raise(module)
        base = members[0]
        assert functions_identical(base, members[1])
        assert structurally_similar(base, members[2])
        assert not structurally_similar(base, members[3])

    def test_add_call_sites_creates_driver_calling_everything(self):
        module = Module()
        members = make_family(module, _spec(seed=21, name="fam2"),
                              FamilySpec(identical=1), random.Random(0))
        driver = add_call_sites(module, members, random.Random(0))
        verify_or_raise(module)
        callees = {inst.operands[0].name for inst in driver.instructions()
                   if inst.opcode == "call"}
        assert {m.name for m in members} <= callees
