"""Tests for the benchmark suite models and the mini-C case studies."""

import pytest

from repro.baselines import structurally_similar
from repro.core import merge_functions, estimate_profit
from repro.ir import verify_or_raise
from repro.targets import X86_64
from repro.workloads import (CASE_STUDY_PAIRS, MIBENCH_BENCHMARKS, SPEC_BENCHMARKS,
                             build_mibench_benchmark, build_spec_benchmark,
                             case_study_module, libquantum_module,
                             mibench_benchmark_names, rijndael_module,
                             spec_benchmark_names, sphinx_module)


class TestSuiteConfigs:
    def test_all_19_spec_benchmarks_modelled(self):
        assert len(SPEC_BENCHMARKS) == 19
        assert "462.libquantum" in spec_benchmark_names()
        assert "483.xalancbmk" in spec_benchmark_names()

    def test_all_23_mibench_benchmarks_modelled(self):
        assert len(MIBENCH_BENCHMARKS) == 23
        assert "rijndael" in mibench_benchmark_names()

    def test_table1_statistics_recorded(self):
        by_name = {b.name: b for b in SPEC_BENCHMARKS}
        assert by_name["483.xalancbmk"].functions == 14191
        assert by_name["470.lbm"].functions == 17
        assert by_name["401.bzip2"].avg_size == 206

    def test_similarity_mix_calibration(self):
        by_name = {b.name: b for b in SPEC_BENCHMARKS}
        # templated C++ benchmarks have identical-share, libquantum does not
        assert by_name["447.dealII"].identical_share > 0.1
        assert by_name["462.libquantum"].identical_share == 0.0
        assert by_name["462.libquantum"].partial_share > 0.3
        assert by_name["470.lbm"].partial_share == 0.0


class TestGeneratedBenchmarks:
    def test_spec_benchmark_generates_verified_module(self):
        generated = build_spec_benchmark("462.libquantum", scale=0.1, cap=20)
        verify_or_raise(generated.module)
        assert generated.module.defined_functions()
        assert generated.partial_members

    def test_generation_is_deterministic(self):
        a = build_spec_benchmark("433.milc", scale=0.05, cap=15)
        b = build_spec_benchmark("433.milc", scale=0.05, cap=15)
        assert (sorted(f.name for f in a.module.functions)
                == sorted(f.name for f in b.module.functions))
        assert a.module.instruction_count() == b.module.instruction_count()

    def test_cap_limits_function_count(self):
        generated = build_spec_benchmark("483.xalancbmk", scale=1.0, cap=12)
        # cap + helper declarations + driver
        assert len(generated.module.defined_functions()) <= 14

    def test_lbm_has_no_mergeable_families(self):
        generated = build_spec_benchmark("470.lbm", scale=1.0, cap=20)
        assert not generated.identical_members
        assert not generated.structural_members
        assert not generated.partial_members

    def test_profiles_attached_and_hot_candidates_marked(self):
        generated = build_spec_benchmark("433.milc", scale=0.1, cap=20)
        functions = generated.module.defined_functions()
        assert any(getattr(f, "profile", None) is not None for f in functions)
        assert generated.hot_functions
        hot = generated.hot_functions[0]
        assert hot in (generated.partial_members + generated.structural_members
                       + generated.identical_members)

    def test_mibench_benchmark_generates(self):
        generated = build_mibench_benchmark("bitcount")
        verify_or_raise(generated.module)
        unknown = pytest.raises(KeyError, build_mibench_benchmark, "doesnotexist")
        assert unknown

    def test_rijndael_special_case_has_large_pair(self):
        generated = build_mibench_benchmark("rijndael")
        verify_or_raise(generated.module)
        encrypt = generated.module.get_function("rijndael_encrypt")
        decrypt = generated.module.get_function("rijndael_decrypt")
        assert encrypt.instruction_count() > 100
        # the pair dominates the module, like in the paper (~70% of the code)
        total = sum(f.instruction_count() for f in generated.module.defined_functions())
        pair = encrypt.instruction_count() + decrypt.instruction_count()
        assert pair / total > 0.5

    def test_unknown_spec_benchmark_rejected(self):
        with pytest.raises(KeyError):
            build_spec_benchmark("499.nonexistent")


class TestCaseStudies:
    def test_modules_compile_and_verify(self):
        for name in CASE_STUDY_PAIRS:
            module = case_study_module(name)
            verify_or_raise(module)
            for function_name in CASE_STUDY_PAIRS[name]:
                assert module.get_function(function_name) is not None

    def test_unknown_case_study_rejected(self):
        with pytest.raises(KeyError):
            case_study_module("doom")

    def test_sphinx_pair_differs_in_signature(self):
        module = sphinx_module()
        f1, f2 = (module.get_function(n) for n in CASE_STUDY_PAIRS["sphinx"])
        assert f1.function_type != f2.function_type
        assert not structurally_similar(f1, f2)

    def test_libquantum_pair_differs_in_cfg(self):
        module = libquantum_module()
        f1, f2 = (module.get_function(n) for n in CASE_STUDY_PAIRS["libquantum"])
        assert f1.function_type == f2.function_type
        assert len(f1.blocks) != len(f2.blocks)

    @pytest.mark.parametrize("name", sorted(CASE_STUDY_PAIRS))
    def test_fmsa_merges_every_case_study_profitably(self, name):
        module = case_study_module(name)
        f1, f2 = (module.get_function(n) for n in CASE_STUDY_PAIRS[name])
        result = merge_functions(f1, f2)
        verify_or_raise(result.merged)
        evaluation = estimate_profit(result, X86_64)
        assert evaluation.profitable, f"{name} should merge profitably"

    def test_rijndael_pair_reduction_matches_paper_shape(self):
        # the paper reports a 42% reduction in IR instructions for the pair;
        # our synthetic kernels should land in the same ballpark (> 25%)
        module = rijndael_module()
        f1, f2 = (module.get_function(n) for n in CASE_STUDY_PAIRS["rijndael"])
        result = merge_functions(f1, f2)
        combined = f1.instruction_count() + f2.instruction_count()
        reduction = 1.0 - result.merged.instruction_count() / combined
        assert reduction > 0.25
