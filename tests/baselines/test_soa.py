"""Tests for the structural (SOA / von Koch) baseline."""

import random

from repro.baselines import (StructuralFunctionMergingPass, cfg_shape,
                             structural_alignment, structurally_similar)
from repro.core.codegen import CodegenError
from repro.ir import Module, verify_or_raise
from repro.ir import types as ty
from repro.workloads import (add_extra_instructions, add_guard_block, clone_function,
                             mutate_constants, mutate_opcodes, libquantum_module,
                             sphinx_module)

from tests.helpers import make_binary_chain_function, make_caller, run_function


def _structural_pair(module, rng=None):
    """Two functions with identical signatures and isomorphic CFGs that
    differ in exactly one opcode and one constant (SOA-mergeable)."""
    base = make_binary_chain_function(module, "base",
                                      ["add", "mul", "add", "xor", "sub", "mul"],
                                      constant=3)
    sibling = make_binary_chain_function(module, "sibling",
                                         ["add", "mul", "sub", "xor", "sub", "mul"],
                                         constant=9)
    return base, sibling


class TestApplicability:
    def test_structural_variant_is_similar(self):
        module = Module()
        base, sibling = _structural_pair(module)
        assert structurally_similar(base, sibling)
        assert cfg_shape(base) == cfg_shape(sibling)

    def test_different_signature_rejected(self):
        module = Module()
        base = make_binary_chain_function(module, "base", ["add"])
        extra = clone_function(module, base, "extra", extra_param_types=[ty.DOUBLE])
        assert not structurally_similar(base, extra)

    def test_different_cfg_rejected(self):
        module = Module()
        base = make_binary_chain_function(module, "base", ["add"])
        guarded = clone_function(module, base, "guarded")
        add_guard_block(module, guarded, random.Random(0))
        assert not structurally_similar(base, guarded)

    def test_different_block_sizes_rejected(self):
        module = Module()
        base = make_binary_chain_function(module, "base", ["add", "mul"])
        padded = clone_function(module, base, "padded")
        add_extra_instructions(padded, random.Random(0), count=2)
        assert not structurally_similar(base, padded)

    def test_paper_motivating_examples_rejected_by_soa(self):
        # Figure 1: different signatures; Figure 2: different CFGs
        sphinx = sphinx_module()
        assert not structurally_similar(sphinx.get_function("glist_add_float32"),
                                        sphinx.get_function("glist_add_float64"))
        quantum = libquantum_module()
        assert not structurally_similar(quantum.get_function("quantum_cond_phase"),
                                        quantum.get_function("quantum_cond_phase_inv"))

    def test_structural_alignment_requires_equal_lengths(self):
        module = Module()
        base = make_binary_chain_function(module, "base", ["add"])
        longer = make_binary_chain_function(module, "longer", ["add", "mul"])
        try:
            structural_alignment(base, longer)
            assert False, "expected CodegenError"
        except CodegenError:
            pass

    def test_structural_alignment_pairs_entries_positionally(self):
        module = Module()
        base, sibling = _structural_pair(module)
        alignment = structural_alignment(base, sibling)
        assert alignment.match_count > 0
        # mismatching opcodes become one-sided entries, never cross-matched
        for entry in alignment.entries:
            if entry.is_match and entry.left.is_instruction:
                assert entry.left.value.opcode == entry.right.value.opcode


class TestStructuralPass:
    def test_merges_structural_family_and_preserves_semantics(self):
        def build():
            module = Module()
            base, sibling = _structural_pair(module, random.Random(7))
            make_caller(module, "main", [base, sibling])
            return module

        reference = build()
        optimized = build()
        report = StructuralFunctionMergingPass().run(optimized)
        assert report.merge_count == 1
        verify_or_raise(optimized)
        for n in (0, 2, 9):
            assert (run_function(optimized, "main", [n])
                    == run_function(reference, "main", [n]))

    def test_does_not_merge_partially_similar_functions(self):
        module = Module()
        base = make_binary_chain_function(module, "base", ["add", "mul"])
        partial = clone_function(module, base, "partial", extra_param_types=[ty.I64])
        make_caller(module, "main", [base, partial])
        report = StructuralFunctionMergingPass().run(module)
        assert report.merge_count == 0

    def test_identical_functions_also_handled(self):
        module = Module()
        base = make_binary_chain_function(module, "base", ["add", "mul", "xor"])
        twin = clone_function(module, base, "twin")
        make_caller(module, "main", [base, twin])
        report = StructuralFunctionMergingPass().run(module)
        assert report.merge_count == 1
        verify_or_raise(module)

    def test_report_counts_candidates(self):
        module = Module()
        base, sibling = _structural_pair(module)
        make_caller(module, "main", [base, sibling])
        report = StructuralFunctionMergingPass().run(module)
        assert report.candidates_evaluated >= 1
        assert report.elapsed >= 0.0
