"""Tests for the Identical (LLVM MergeFunctions-style) baseline."""

import random

from repro.baselines import (IdenticalFunctionMergingPass, functions_identical,
                             structural_hash)
from repro.ir import IRBuilder, Module, verify_or_raise
from repro.ir import types as ty
from repro.ir import values as vals
from repro.workloads import clone_function, mutate_constants, mutate_opcodes

from tests.helpers import make_binary_chain_function, make_caller, run_function


class TestIdentityCheck:
    def test_clone_is_identical(self):
        module = Module()
        base = make_binary_chain_function(module, "base", ["add", "mul"])
        copy = clone_function(module, base, "copy")
        assert structural_hash(base) == structural_hash(copy)
        assert functions_identical(base, copy)

    def test_different_constant_not_identical(self):
        module = Module()
        base = make_binary_chain_function(module, "base", ["add"], constant=3)
        other = make_binary_chain_function(module, "other", ["add"], constant=4)
        assert not functions_identical(base, other)

    def test_different_opcode_not_identical(self):
        module = Module()
        base = make_binary_chain_function(module, "base", ["add"])
        other = make_binary_chain_function(module, "other", ["sub"])
        assert not functions_identical(base, other)
        assert structural_hash(base) != structural_hash(other)

    def test_different_signature_not_identical(self):
        module = Module()
        base = make_binary_chain_function(module, "base", ["add"])
        extra = clone_function(module, base, "extra", extra_param_types=[ty.I64])
        assert not functions_identical(base, extra)

    def test_mutated_clone_not_identical(self):
        module = Module()
        rng = random.Random(1)
        base = make_binary_chain_function(module, "base", ["add", "mul", "xor"])
        mutated = clone_function(module, base, "mutated")
        mutate_opcodes(mutated, rng, fraction=1.0)
        assert not functions_identical(base, mutated)

    def test_value_numbering_handles_operand_topology(self):
        # two functions with the same multiset of instructions but different
        # dataflow must NOT be identical
        module = Module()
        f1 = module.create_function("f1", ty.function_type(ty.I32, [ty.I32, ty.I32]))
        builder = IRBuilder(f1.append_block("entry"))
        a1 = builder.add(f1.arguments[0], f1.arguments[1])
        builder.ret(builder.add(a1, f1.arguments[0]))
        f2 = module.create_function("f2", ty.function_type(ty.I32, [ty.I32, ty.I32]))
        builder = IRBuilder(f2.append_block("entry"))
        a2 = builder.add(f2.arguments[0], f2.arguments[1])
        builder.ret(builder.add(a2, f2.arguments[1]))
        assert not functions_identical(f1, f2)


class TestIdenticalPass:
    def test_folds_identical_clones(self):
        module = Module()
        base = make_binary_chain_function(module, "base", ["add", "mul"])
        clones = [clone_function(module, base, f"copy{i}") for i in range(3)]
        make_caller(module, "main", [base] + clones)
        before = run_function(module, "main", [5])
        report = IdenticalFunctionMergingPass().run(module)
        assert report.merge_count == 3
        verify_or_raise(module)
        assert run_function(module, "main", [5]) == before
        # the duplicates were internal and uncalled after retargeting
        assert module.get_function("copy0") is None

    def test_ignores_non_identical_functions(self):
        module = Module()
        f1 = make_binary_chain_function(module, "a", ["add"])
        f2 = make_binary_chain_function(module, "b", ["sub"])
        make_caller(module, "main", [f1, f2])
        report = IdenticalFunctionMergingPass().run(module)
        assert report.merge_count == 0

    def test_external_duplicate_becomes_thunk(self):
        module = Module()
        base = make_binary_chain_function(module, "base", ["add", "mul"])
        dup = clone_function(module, base, "dup")
        dup.linkage = "external"
        make_caller(module, "main", [base, dup])
        before = run_function(module, "main", [4])
        report = IdenticalFunctionMergingPass().run(module)
        assert report.merge_count == 1
        thunk = module.get_function("dup")
        assert thunk is not None and thunk.instruction_count() == 2
        verify_or_raise(module)
        assert run_function(module, "main", [4]) == before

    def test_no_merges_reported_for_empty_module(self):
        assert IdenticalFunctionMergingPass().run(Module()).merge_count == 0
