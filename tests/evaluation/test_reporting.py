"""Tests for the text reporting helpers."""

from repro.evaluation import (arithmetic_mean, ascii_table, bar_chart, cdf_table,
                              format_percent, format_ratio, geometric_mean, text_bar,
                              to_csv)


class TestTables:
    def test_ascii_table_alignment(self):
        table = ascii_table(["name", "value"], [["a", 1], ["long-name", 123]],
                            title="demo")
        lines = table.splitlines()
        assert lines[0] == "demo"
        assert all(len(line) == len(lines[1]) for line in lines[1:])
        assert "long-name" in table

    def test_ascii_table_handles_extra_columns(self):
        table = ascii_table(["a"], [["x", "overflow"]])
        assert "overflow" in table

    def test_to_csv(self):
        csv_text = to_csv(["a", "b"], [[1, 2], ["x,y", 3]])
        lines = csv_text.strip().splitlines()
        assert lines[0] == "a,b"
        assert lines[2].startswith('"x,y"')

    def test_cdf_table(self):
        rows = cdf_table([1, 1, 1, 2, 5], max_position=5)
        assert rows[0] == (1, 60.0)
        assert rows[1] == (2, 80.0)
        assert rows[4] == (5, 100.0)
        assert cdf_table([], max_position=3) == [(1, 0.0), (2, 0.0), (3, 0.0)]


class TestFormatting:
    def test_percent_and_ratio(self):
        assert format_percent(6.25) == "6.2%"
        assert format_ratio(1.5) == "1.50x"

    def test_text_bar_proportional(self):
        assert len(text_bar(5, 10, width=10)) == 5
        assert text_bar(0, 10) == ""
        assert text_bar(1, 0) == ""

    def test_bar_chart_contains_labels_and_bars(self):
        chart = bar_chart(["alpha", "b"], [10.0, 5.0], title="t", unit="%")
        assert "alpha" in chart and "t" in chart
        assert chart.count("#") > 0

    def test_means(self):
        assert arithmetic_mean([1, 2, 3]) == 2.0
        assert arithmetic_mean([]) == 0.0
        assert geometric_mean([1, 100]) == 10.0
        assert geometric_mean([]) == 0.0
