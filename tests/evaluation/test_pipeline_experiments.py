"""Tests for the compilation pipeline and the experiment harness.

These run the real experiment code on a small subset of benchmarks at a
reduced scale so they stay fast while exercising every code path the
benchmark harness uses.
"""

import pytest

from repro.evaluation import (EvaluationSettings, compile_module, evaluate_suite,
                              figure8, figure10, figure11, figure12, figure13,
                              figure14, reduction_bar_chart, table1, table2)
from repro.ir import verify_or_raise
from repro.workloads import build_mibench_benchmark, build_spec_benchmark


@pytest.fixture(scope="module")
def small_spec_evaluation():
    """One shared evaluation over a representative subset of SPEC."""
    settings = EvaluationSettings(
        suite="spec",
        benchmarks=["462.libquantum", "447.dealII", "470.lbm", "433.milc"],
        scale=0.05, cap=18, thresholds=(1, 10), targets=("x86-64",),
        include_hot_exclusion=True)
    return evaluate_suite(settings)


class TestCompileModule:
    def test_baseline_pipeline(self):
        generated = build_spec_benchmark("462.libquantum", scale=0.1, cap=12)
        result = compile_module(generated.module, "baseline", benchmark="libq")
        assert result.technique == "baseline"
        assert result.size_after > 0 and result.size_baseline > 0
        assert result.merge_count == 0
        assert result.function_count > 0
        verify_or_raise(generated.module)

    def test_fmsa_pipeline_reduces_size(self):
        generated = build_spec_benchmark("462.libquantum", scale=0.1, cap=12)
        baseline = compile_module(build_spec_benchmark("462.libquantum", scale=0.1,
                                                       cap=12).module, "baseline")
        result = compile_module(generated.module, "fmsa", threshold=1)
        assert result.technique == "fmsa[t=1]"
        assert result.merge_count >= 1
        assert result.size_after < baseline.size_after
        assert set(result.stage_times) >= {"alignment", "codegen"}
        verify_or_raise(generated.module)

    def test_arm_target_supported(self):
        generated = build_spec_benchmark("482.sphinx3", scale=0.05, cap=10)
        result = compile_module(generated.module, "fmsa", target="arm-thumb")
        assert result.target == "arm-thumb"

    def test_normalized_compile_time_at_least_one(self):
        generated = build_mibench_benchmark("bitcount")
        result = compile_module(generated.module, "fmsa")
        assert result.normalized_compile_time >= 1.0
        assert result.measured_normalized_compile_time >= 1.0

    def test_runtime_model_reports_no_overhead_without_merges(self):
        generated = build_spec_benchmark("470.lbm", scale=1.0, cap=10)
        result = compile_module(generated.module, "fmsa")
        assert result.normalized_runtime == pytest.approx(1.0)


class TestSuiteEvaluation:
    def test_all_configurations_present(self, small_spec_evaluation):
        ev = small_spec_evaluation
        assert "baseline" in ev.configurations
        assert "identical" in ev.configurations
        assert "soa" in ev.configurations
        assert "fmsa[t=1]" in ev.configurations
        assert "fmsa[t=10]" in ev.configurations
        assert any(c.endswith("nohot") for c in ev.configurations)
        assert len(ev.results) == len(ev.benchmarks) * len(ev.configurations)

    def test_fmsa_beats_baselines_on_average(self, small_spec_evaluation):
        ev = small_spec_evaluation
        identical = ev.mean_reduction("x86-64", "identical")
        soa = ev.mean_reduction("x86-64", "soa")
        fmsa = ev.mean_reduction("x86-64", "fmsa[t=1]")
        assert fmsa > soa >= identical >= 0.0
        # headline claim: FMSA is at least ~2x better than the SOA here
        assert fmsa >= 2 * soa or soa == 0.0

    def test_fmsa_only_benchmark_shape(self, small_spec_evaluation):
        ev = small_spec_evaluation
        # libquantum: baselines achieve ~nothing, FMSA achieves something
        assert ev.reduction("462.libquantum", "x86-64", "identical") <= 1.0
        assert ev.reduction("462.libquantum", "x86-64", "soa") <= 1.0
        assert ev.reduction("462.libquantum", "x86-64", "fmsa[t=1]") > 3.0
        # lbm: nobody achieves anything
        assert ev.reduction("470.lbm", "x86-64", "fmsa[t=10]") == pytest.approx(0.0, abs=0.5)
        # dealII: everyone achieves something, FMSA the most
        assert ev.reduction("447.dealII", "x86-64", "identical") > 0.0
        assert (ev.reduction("447.dealII", "x86-64", "fmsa[t=10]")
                >= ev.reduction("447.dealII", "x86-64", "soa"))

    def test_threshold_10_not_worse_than_1(self, small_spec_evaluation):
        ev = small_spec_evaluation
        assert (ev.mean_reduction("x86-64", "fmsa[t=10]")
                >= ev.mean_reduction("x86-64", "fmsa[t=1]") - 0.01)

    def test_hot_exclusion_removes_runtime_overhead(self, small_spec_evaluation):
        ev = small_spec_evaluation
        with_hot = ev.result("433.milc", "x86-64", "fmsa[t=1]")
        without_hot = ev.result("433.milc", "x86-64", "fmsa[t=1],nohot")
        assert with_hot.normalized_runtime > 1.0
        assert without_hot.normalized_runtime == pytest.approx(1.0)
        # and it still reduces code size, just less
        assert (ev.reduction("433.milc", "x86-64", "fmsa[t=1],nohot")
                <= ev.reduction("433.milc", "x86-64", "fmsa[t=1]"))


class TestReports:
    def test_figure10_report_structure(self, small_spec_evaluation):
        report = figure10(small_spec_evaluation, "x86-64")
        assert report.rows[-1][0] == "MEAN"
        assert len(report.rows) == len(small_spec_evaluation.benchmarks) + 1
        rendered = report.render()
        assert "462.libquantum" in rendered
        assert report.csv().startswith("benchmark")

    def test_table1_report(self, small_spec_evaluation):
        report = table1(small_spec_evaluation)
        assert "#Fns" in report.headers
        assert all(len(row) == len(report.headers) for row in report.rows)

    def test_figure12_and_13_reports(self, small_spec_evaluation):
        f12 = figure12(small_spec_evaluation)
        assert f12.rows[-1][0] == "MEAN"
        f13 = figure13(small_spec_evaluation)
        assert "alignment" in f13.headers
        # alignment should dominate the FMSA compile time (paper, Figure 13)
        overall = f13.rows[-1]
        alignment_share = float(overall[f13.headers.index("alignment")])
        assert alignment_share > 25.0

    def test_figure8_report(self, small_spec_evaluation):
        report = figure8(small_spec_evaluation)
        coverages = [float(row[1]) for row in report.rows]
        assert coverages == sorted(coverages)
        assert coverages[-1] == pytest.approx(100.0)
        # most merges should come from the top of the ranking (the paper
        # reports 89% at position 1 on the full suite; this is a small subset)
        assert coverages[0] >= 50.0

    def test_figure14_report(self, small_spec_evaluation):
        report = figure14(small_spec_evaluation)
        assert report.rows[-1][0] == "MEAN"
        values = [float(v) for v in report.rows[-1][1:]]
        assert all(v >= 1.0 for v in values)
        assert all(v < 1.3 for v in values)

    def test_bar_chart_helper(self, small_spec_evaluation):
        chart = reduction_bar_chart(small_spec_evaluation, "fmsa[t=1]")
        assert "462.libquantum" in chart


class TestMiBenchEvaluation:
    @pytest.fixture(scope="class")
    def mibench_evaluation(self):
        settings = EvaluationSettings(
            suite="mibench",
            benchmarks=["rijndael", "CRC32", "bitcount"],
            scale=1.0, cap=16, thresholds=(1,), targets=("x86-64",))
        return evaluate_suite(settings)

    def test_rijndael_dominates_like_the_paper(self, mibench_evaluation):
        ev = mibench_evaluation
        assert ev.reduction("rijndael", "x86-64", "fmsa[t=1]") > 10.0
        assert ev.reduction("rijndael", "x86-64", "identical") == pytest.approx(0.0, abs=0.5)
        assert ev.reduction("rijndael", "x86-64", "soa") == pytest.approx(0.0, abs=0.5)
        assert ev.reduction("CRC32", "x86-64", "fmsa[t=1]") == pytest.approx(0.0, abs=1.0)

    def test_figure11_report(self, mibench_evaluation):
        report = figure11(mibench_evaluation)
        assert "rijndael" in report.render()
        table = table2(mibench_evaluation)
        assert any(row[0] == "rijndael" for row in table.rows)


class TestOpenCompileSession:
    """The edit-recompile seam: pipeline pre-passes + a warm MergeSession."""

    def test_session_updates_match_cold_engine_runs(self):
        from repro.core import MergeEngine, ModuleEdit, apply_edit
        from repro.evaluation import open_compile_session
        from repro.ir.clone import clone_function_detached
        from repro.passes.dce import DeadCodeElimination
        from repro.passes.simplify_cfg import SimplifyCFG

        def prepped_module():
            generated = build_spec_benchmark("462.libquantum", scale=0.1,
                                             cap=12)
            DeadCodeElimination().run(generated.module)
            SimplifyCFG().run(generated.module)
            return generated.module

        donor = build_spec_benchmark("433.milc", scale=0.05,
                                     cap=8).module.functions[0]
        edit = ModuleEdit.add(clone_function_detached(donor,
                                                      name="edited_fn"))
        module = build_spec_benchmark("462.libquantum", scale=0.1, cap=12).module
        with open_compile_session(module, threshold=1) as session:
            assert session.report.merge_count >= 1
            delta = session.update([edit])
            assert delta.edits == 1
            cold_module = prepped_module()
            apply_edit(cold_module, edit)
            cold = MergeEngine(exploration_threshold=1).run(cold_module)
            assert session.report.decision_keys() == cold.decision_keys()
            verify_or_raise(session.module)
