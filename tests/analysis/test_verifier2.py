"""Verifier v2 tests: clean modules pass, seeded defects are diagnosed.

Each mutation test starts from a well-formed function, breaks exactly one
invariant through the raw IR APIs, and asserts the matching rule fires.
"""

import pytest

from repro.analysis import (AnalysisError, errors_of, verify_function_v2,
                            verify_module_or_raise, verify_module_v2,
                            warnings_of)
from repro.core import merge_functions, apply_merge
from repro.ir import IRBuilder, Module
from repro.ir import types as ty
from repro.ir import values as vals
from tests.helpers import make_binary_chain_function


def _diamond(module=None, name="diamond"):
    module = module or Module()
    function = module.create_function(
        name, ty.function_type(ty.I32, [ty.I32]), arg_names=["x"])
    entry = function.append_block("entry")
    left = function.append_block("left")
    right = function.append_block("right")
    join = function.append_block("join")
    builder = IRBuilder(entry)
    cond = builder.icmp("sgt", function.arguments[0], vals.const_int(0))
    builder.cond_br(cond, left, right)
    lb = IRBuilder(left)
    lv = lb.add(function.arguments[0], vals.const_int(1), "lv")
    lb.br(join)
    rb = IRBuilder(right)
    rv = rb.add(function.arguments[0], vals.const_int(2), "rv")
    rb.br(join)
    jb = IRBuilder(join)
    phi = jb.phi(ty.I32, "merged")
    phi.add_incoming(lv, left)
    phi.add_incoming(rv, right)
    jb.ret(phi)
    return module, function


def _rules(diagnostics):
    return {d.rule for d in errors_of(diagnostics)}


class TestCleanModules:
    def test_diamond_is_clean(self):
        module, function = _diamond()
        assert errors_of(verify_function_v2(function)) == []
        assert errors_of(verify_module_v2(module)) == []
        verify_module_or_raise(module)  # must not raise

    def test_declaration_is_clean(self):
        module = Module()
        module.create_function("ext", ty.function_type(ty.I32, [ty.I32]))
        assert errors_of(verify_module_v2(module)) == []

    def test_merged_function_is_clean(self):
        module = Module()
        f1 = make_binary_chain_function(module, "f1", ["add", "mul", "sub"])
        f2 = make_binary_chain_function(module, "f2", ["add", "xor", "sub"])
        result = merge_functions(f1, f2)
        assert result is not None
        apply_merge(module, result)
        diags = verify_module_v2(module)
        assert errors_of(diags) == [], "\n".join(map(str, errors_of(diags)))


class TestSeededCfgDefects:
    def test_entry_with_predecessor(self):
        module, function = _diamond()
        entry, left = function.blocks[0], function.blocks[1]
        # retarget left's terminator back at the entry block
        left.instructions[-1].set_operand(0, entry)
        diags = verify_function_v2(function)
        assert "cfg.entry-predecessor" in _rules(diags)

    def test_unreachable_block_is_warning_not_error(self):
        module, function = _diamond()
        dead = function.append_block("dead")
        IRBuilder(dead).ret(vals.const_int(0))
        diags = verify_function_v2(function)
        assert errors_of(diags) == []
        assert "cfg.unreachable-block" in {d.rule for d in warnings_of(diags)}

    def test_foreign_successor(self):
        module, function = _diamond()
        other_module, other = _diamond(name="other")
        function.blocks[1].instructions[-1].set_operand(0, other.blocks[3])
        diags = verify_function_v2(function)
        assert "cfg.foreign-successor" in _rules(diags)

    def test_missing_terminator(self):
        module, function = _diamond()
        join = function.blocks[3]
        join.instructions.pop()  # drop the ret
        diags = verify_function_v2(function)
        assert "verifier.no-terminator" in _rules(diags)

    def test_phi_incoming_from_non_predecessor(self):
        module, function = _diamond()
        entry, join = function.blocks[0], function.blocks[3]
        phi = join.instructions[0]
        phi.add_incoming(vals.const_int(9), entry)  # entry is not a pred
        diags = verify_function_v2(function)
        assert "cfg.phi-predecessors" in _rules(diags)


class TestSeededDataflowDefects:
    def test_type_mismatched_operand(self):
        module, function = _diamond()
        left = function.blocks[1]
        add = left.instructions[0]
        add.set_operand(1, vals.const_int(1, 1))  # i1 into an i32 add
        diags = verify_function_v2(function)
        assert _rules(diags) & {"verifier.opcode", "verifier.type"}

    def test_use_before_def_across_sibling_blocks(self):
        module, function = _diamond()
        left, right = function.blocks[1], function.blocks[2]
        lv = left.instructions[0]
        # right does not postdominate left's def: sibling use is invalid
        right.instructions[0].set_operand(1, lv)
        diags = verify_function_v2(function)
        assert "verifier.use-before-def" in _rules(diags)

    def test_use_before_def_same_block(self):
        module, function = _diamond()
        entry = function.blocks[0]
        builder = IRBuilder(entry)
        late = builder.add(function.arguments[0], vals.const_int(3), "late")
        # place the def between the icmp and the branch, then make the
        # earlier icmp read it
        entry.instructions.remove(late)
        entry.instructions.insert(1, late)
        entry.instructions[0].set_operand(0, late)
        diags = verify_function_v2(function)
        assert "verifier.use-before-def" in _rules(diags)

    def test_def_in_unreachable_block_used_in_live_code(self):
        module, function = _diamond()
        dead = function.append_block("dead")
        db = IRBuilder(dead)
        ghost = db.add(function.arguments[0], vals.const_int(5), "ghost")
        db.ret(ghost)
        join = function.blocks[3]
        join.instructions[-1].set_operand(0, ghost)
        diags = verify_function_v2(function)
        assert "verifier.use-before-def" in _rules(diags)


class TestSeededReferenceDefects:
    def test_foreign_callee(self):
        module, function = _diamond()
        foreign_module = Module()
        foreign = foreign_module.create_function(
            "foreign", ty.function_type(ty.I32, [ty.I32]))
        entry = function.blocks[0]
        builder = IRBuilder(entry)
        call = builder.call(foreign, [function.arguments[0]], "c")
        entry.instructions.remove(call)
        entry.instructions.insert(0, call)
        diags = verify_function_v2(function)
        assert "verifier.foreign-callee" in _rules(diags)

    def test_dangling_callee(self):
        module, function = _diamond()
        helper = module.create_function(
            "helper", ty.function_type(ty.I32, [ty.I32]))
        entry = function.blocks[0]
        builder = IRBuilder(entry)
        call = builder.call(helper, [function.arguments[0]], "c")
        entry.instructions.remove(call)
        entry.instructions.insert(0, call)
        module.remove_function(helper)  # call site survives, callee gone
        diags = verify_function_v2(function)
        assert "verifier.dangling-callee" in _rules(diags)

    def test_foreign_argument(self):
        module, function = _diamond()
        other_module, other = _diamond(name="other")
        left = function.blocks[1]
        left.instructions[0].set_operand(0, other.arguments[0])
        diags = verify_function_v2(function)
        assert "verifier.foreign-argument" in _rules(diags)

    def test_foreign_instruction_value(self):
        module, function = _diamond()
        other_module, other = _diamond(name="other")
        stray = other.blocks[1].instructions[0]
        left = function.blocks[1]
        left.instructions[0].set_operand(0, stray)
        diags = verify_function_v2(function)
        assert "verifier.foreign-value" in _rules(diags)


class TestGatedDominance:
    """Merged codegen guards defs behind i1 predicate arguments; the
    verifier must accept uses valid under every consistent assignment and
    reject genuinely unguarded ones."""

    @staticmethod
    def _gated_function():
        module = Module()
        function = module.create_function(
            "gated", ty.function_type(ty.I32, [ty.I32, ty.I1]),
            arg_names=["a", "p"])
        a, p = function.arguments
        entry = function.append_block("entry")
        guarded = function.append_block("guarded")
        other = function.append_block("other")
        join = function.append_block("join")
        IRBuilder(entry).cond_br(p, guarded, other)
        gb = IRBuilder(guarded)
        x = gb.add(a, vals.const_int(1), "x")
        gb.br(join)
        ob = IRBuilder(other)
        y = ob.add(a, vals.const_int(2), "y")
        ob.br(join)
        return module, function, (a, p, x, y, join)

    def test_select_pinned_use_is_accepted(self):
        module, function, (a, p, x, y, join) = self._gated_function()
        jb = IRBuilder(join)
        jb.ret(jb.select(p, x, y, "pick"))
        assert errors_of(verify_function_v2(function)) == []

    def test_unconditional_use_of_gated_def_is_rejected(self):
        module, function, (a, p, x, y, join) = self._gated_function()
        IRBuilder(join).ret(x)  # x only exists when p is true
        diags = verify_function_v2(function)
        assert "verifier.use-before-def" in _rules(diags)

    def test_swapped_select_arms_are_rejected(self):
        module, function, (a, p, x, y, join) = self._gated_function()
        jb = IRBuilder(join)
        jb.ret(jb.select(p, y, x, "pick"))  # arms pinned to wrong polarity
        diags = verify_function_v2(function)
        assert "verifier.use-before-def" in _rules(diags)


class TestRaiseHelper:
    def test_verify_module_or_raise(self):
        module, function = _diamond()
        left = function.blocks[1]
        lv = left.instructions[0]
        function.blocks[2].instructions[0].set_operand(1, lv)
        with pytest.raises(AnalysisError) as excinfo:
            verify_module_or_raise(module)
        assert "use-before-def" in str(excinfo.value)
