"""Merge-correctness linter tests.

Each test commits a real merge through ``merge_functions`` + ``apply_merge``
and then either checks the clean commit lints quietly or tampers with one
of the engine's promises and asserts the matching ``mergelint.*`` rule."""

from repro.analysis import errors_of, lint_callgraph, lint_commit, lint_module
from repro.core import apply_merge, merge_functions
from repro.ir import IRBuilder, Module
from repro.ir import types as ty
from repro.ir import values as vals
from repro.ir.callgraph import CallGraph
from tests.helpers import make_binary_chain_function


def _rules(diagnostics):
    return {d.rule for d in errors_of(diagnostics)}


def _merged_with_thunks():
    """Merge two externally visible functions: both originals survive as
    thunks (deletion is unsafe for external linkage)."""
    module = Module()
    f1 = make_binary_chain_function(module, "f1", ["add", "mul", "sub"],
                                    linkage="external")
    f2 = make_binary_chain_function(module, "f2", ["add", "xor", "sub"],
                                    linkage="external")
    graph = CallGraph(module)
    result = merge_functions(f1, f2)
    assert result is not None
    applied = apply_merge(module, result, call_graph=graph)
    return module, graph, result, applied


def _merged_with_deletion():
    """Merge two internal, uncalled functions: the originals are deleted."""
    module = Module()
    f1 = make_binary_chain_function(module, "g1", ["add", "mul", "sub"])
    f2 = make_binary_chain_function(module, "g2", ["add", "xor", "sub"])
    graph = CallGraph(module)
    result = merge_functions(f1, f2)
    assert result is not None
    applied = apply_merge(module, result, call_graph=graph)
    return module, graph, result, applied, (f1, f2)


class TestCleanCommits:
    def test_thunked_commit_is_clean(self):
        module, graph, result, applied = _merged_with_thunks()
        assert applied.disposition == ["thunk", "thunk"]
        diags = lint_commit(module, result, applied, graph)
        assert errors_of(diags) == [], "\n".join(map(str, diags))
        assert errors_of(lint_module(module, graph)) == []

    def test_deleted_commit_is_clean(self):
        module, graph, result, applied, _ = _merged_with_deletion()
        assert applied.disposition == ["deleted", "deleted"]
        diags = lint_commit(module, result, applied, graph)
        assert errors_of(diags) == [], "\n".join(map(str, diags))


class TestThunkLints:
    def test_tampered_thunk_argument(self):
        module, graph, result, applied = _merged_with_thunks()
        thunk = module.get_function(applied.function1)
        call = thunk.blocks[0].instructions[0]
        # overwrite a forwarded parameter with a constant: the argument
        # list no longer matches what call_arguments derives
        for index, op in enumerate(call.operands[1:], start=1):
            if op in list(thunk.arguments):
                call.set_operand(index, vals.const_int(42, op.type.bits))
                break
        else:  # pragma: no cover - merge shape changed
            raise AssertionError("thunk forwards no parameter")
        diags = lint_commit(module, result, applied, graph)
        assert "mergelint.thunk-signature" in _rules(diags)

    def test_retargeted_thunk_callee(self):
        module, graph, result, applied = _merged_with_thunks()
        thunk = module.get_function(applied.function1)
        other = module.get_function(applied.function2)
        call = thunk.blocks[0].instructions[0]
        call.set_operand(0, other)
        diags = lint_commit(module, result, applied)
        assert "mergelint.thunk-callee" in _rules(diags)

    def test_multi_block_thunk_shape(self):
        module, graph, result, applied = _merged_with_thunks()
        thunk = module.get_function(applied.function1)
        extra = thunk.append_block("extra")
        IRBuilder(extra).ret(vals.undef(thunk.return_type))
        diags = lint_commit(module, result, applied)
        assert "mergelint.thunk-shape" in _rules(diags)

    def test_wrong_discriminator_constant(self):
        module, graph, result, applied = _merged_with_thunks()
        if not result.uses_func_id:
            return  # merge was total; nothing to discriminate
        thunk = module.get_function(applied.function1)
        call = thunk.blocks[0].instructions[0]
        for index, param in enumerate(result.merged.arguments):
            if param is result.func_id:
                call.set_operand(index + 1,
                                 result.func_id_constant(1))  # wrong side
                break
        diags = lint_commit(module, result, applied)
        assert "mergelint.thunk-signature" in _rules(diags)


class TestModuleLints:
    def test_merged_missing(self):
        module, graph, result, applied = _merged_with_thunks()
        module.remove_function(result.merged)
        diags = lint_commit(module, result, applied)
        assert "mergelint.merged-missing" in _rules(diags)

    def test_deleted_original_resurrected(self):
        module, graph, result, applied, (f1, f2) = _merged_with_deletion()
        module.add_function(f1)  # re-register the deleted original
        diags = lint_commit(module, result, applied)
        assert "mergelint.deleted-survives" in _rules(diags)

    def test_dangling_reference_to_removed_function(self):
        module, graph, result, applied, (f1, f2) = _merged_with_deletion()
        host = module.create_function(
            "host", ty.function_type(f1.return_type,
                                     [a.type for a in f1.arguments]))
        block = host.append_block("entry")
        builder = IRBuilder(block)
        builder.ret(builder.call(f1, list(host.arguments), "c"))
        diags = lint_module(module)
        assert "mergelint.dangling-reference" in _rules(diags)


class TestCallGraphLints:
    def test_stale_edges_after_unregistered_mutation(self):
        module, graph, result, applied = _merged_with_thunks()
        # mutate the module behind the graph's back: a new caller of the
        # merged function that the incremental graph never saw
        sneaky = module.create_function(
            "sneaky", ty.function_type(ty.I32, [ty.I32]))
        block = sneaky.append_block("entry")
        builder = IRBuilder(block)
        args = [vals.undef(a.type) for a in result.merged.arguments]
        call = builder.call(result.merged, args, "c")
        builder.ret(builder.trunc(call, ty.I32)
                    if call.type != ty.I32 else call)
        diags = lint_callgraph(module, graph)
        assert "mergelint.callgraph-edges" in _rules(diags)

    def test_spurious_address_taken_entry(self):
        module, graph, result, applied = _merged_with_thunks()
        graph.address_taken.add("no-such-function")
        diags = lint_callgraph(module, graph)
        assert "mergelint.address-taken" in _rules(diags)

    def test_accurate_graph_is_clean(self):
        module, graph, result, applied = _merged_with_thunks()
        assert errors_of(lint_callgraph(module, graph)) == []
