"""repro-lint CLI tests."""

import json

from repro.analysis.cli import lint_main


def test_lint_single_workload(capsys):
    assert lint_main(["mibench:rijndael"]) == 0
    out = capsys.readouterr().out
    assert "mibench:rijndael: ok" in out


def test_lint_with_merge_and_json(capsys):
    assert lint_main(["case:libquantum", "--merge", "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["errors"] == 0
    assert payload["targets"]


def test_lint_family_expansion(capsys):
    assert lint_main(["case"]) == 0
    out = capsys.readouterr().out
    assert "3 target(s)" in out


def test_unknown_target_is_an_error(capsys):
    assert lint_main(["mibench:no-such-benchmark"]) == 2
    assert "no-such-benchmark" in capsys.readouterr().err
