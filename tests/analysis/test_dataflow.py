"""Tests for the dataflow layer: CHK dominator tree, def-use chains,
liveness, predicated dominance, and the analysis cache."""

import pytest

from repro.analysis import AnalysisCache, DefUseChains, DominatorTree, Liveness
from repro.analysis.dataflow import FunctionAnalysis
from repro.ir import IRBuilder, Module, cfg
from repro.ir import types as ty
from repro.ir import values as vals
from repro.workloads.case_studies import case_study_module
from repro.workloads.mibench import build_mibench_benchmark


def _diamond():
    module = Module()
    function = module.create_function(
        "diamond", ty.function_type(ty.I32, [ty.I32]), arg_names=["x"])
    entry = function.append_block("entry")
    left = function.append_block("left")
    right = function.append_block("right")
    join = function.append_block("join")
    builder = IRBuilder(entry)
    slot = builder.alloca(ty.I32, "slot")
    cond = builder.icmp("sgt", function.arguments[0], vals.const_int(0))
    builder.cond_br(cond, left, right)
    lb = IRBuilder(left)
    lb.store(vals.const_int(1), slot)
    lb.br(join)
    rb = IRBuilder(right)
    rb.store(vals.const_int(2), slot)
    rb.br(join)
    jb = IRBuilder(join)
    jb.ret(jb.load(slot))
    return function, (entry, left, right, join)


class TestDominatorTree:
    def test_diamond_idoms(self):
        function, (entry, left, right, join) = _diamond()
        tree = DominatorTree(function)
        assert tree.immediate_dominator(entry) is None
        assert tree.immediate_dominator(left) is entry
        assert tree.immediate_dominator(right) is entry
        assert tree.immediate_dominator(join) is entry
        assert tree.depth(entry) == 0
        assert tree.depth(join) == 1

    def test_dominates_is_reflexive_and_respects_structure(self):
        function, (entry, left, right, join) = _diamond()
        tree = DominatorTree(function)
        assert tree.dominates(entry, join)
        assert tree.dominates(join, join)
        assert not tree.dominates(left, join)
        assert not tree.dominates(join, entry)
        assert tree.strictly_dominates(entry, left)
        assert not tree.strictly_dominates(entry, entry)

    def test_valid_use_same_block_ordering(self):
        function, (entry, left, right, join) = _diamond()
        tree = DominatorTree(function)
        assert tree.valid_use((entry, 0), entry, 1)
        assert not tree.valid_use((entry, 1), entry, 0)
        assert tree.valid_use((entry, 0), join, 0)
        assert not tree.valid_use((left, 0), join, 0)

    def test_unreachable_block_queries(self):
        function, (entry, left, right, join) = _diamond()
        dead = function.append_block("dead")
        IRBuilder(dead).ret(vals.const_int(0))
        tree = DominatorTree(function)
        assert not tree.is_reachable(dead)
        assert tree.immediate_dominator(dead) is None
        assert not tree.dominates(entry, dead)
        # a use inside unreachable code is vacuously valid, a def inside
        # unreachable code never reaches live code
        assert tree.valid_use((entry, 0), dead, 0)
        assert not tree.valid_use((dead, 0), join, 0)

    @pytest.mark.parametrize("bench_name", ["bitcount", "sha"])
    def test_matches_classic_dominator_sets_on_mibench(self, bench_name):
        module = build_mibench_benchmark(bench_name).module
        self._cross_check_module(module)

    @pytest.mark.parametrize("name", ["sphinx", "libquantum", "rijndael"])
    def test_matches_classic_dominator_sets_on_case_studies(self, name):
        self._cross_check_module(case_study_module(name))

    @staticmethod
    def _cross_check_module(module):
        checked = 0
        for function in module.defined_functions():
            tree = DominatorTree(function)
            classic = cfg.compute_dominators(function)
            reachable = cfg.reachable_blocks(function)
            chk_sets = tree.dominator_sets()
            for block in function.blocks:
                if id(block) not in reachable:
                    continue
                want = {b for b in classic[block] if id(b) in reachable}
                assert chk_sets[block] == want, \
                    f"{function.name}/{block.name}: CHK disagrees with " \
                    f"classic dominator sets"
                checked += 1
        assert checked > 0


class TestDefUseChains:
    def test_definition_sites_and_users(self):
        function, (entry, left, right, join) = _diamond()
        chains = DefUseChains(function)
        slot = entry.instructions[0]
        assert chains.definition_site(slot) == (entry, 0)
        users = chains.users_of(slot)
        assert len(users) == 3  # two stores and the load
        assert chains.definition_site(function.arguments[0]) is None
        assert id(function.arguments[0]) in chains.argument_ids
        assert chains.users_of(vals.const_int(0)) == []


class TestLiveness:
    def test_cross_block_value_is_live_across(self):
        function, (entry, left, right, join) = _diamond()
        live = Liveness(function)
        slot = entry.instructions[0]       # used in left/right/join
        cond = entry.instructions[1]       # consumed by the branch only
        assert live.live_across(slot)
        assert not live.live_across(cond)
        assert id(slot) in live.live_in[id(join)]


class TestPredicatedDominance:
    def test_gated_definition_dominates_under_its_polarity(self):
        module = Module()
        function = module.create_function(
            "gated", ty.function_type(ty.I32, [ty.I32, ty.I1]),
            arg_names=["a", "p"])
        a, p = function.arguments
        entry = function.append_block("entry")
        guarded = function.append_block("guarded")
        other = function.append_block("other")
        join = function.append_block("join")
        IRBuilder(entry).cond_br(p, guarded, other)
        gb = IRBuilder(guarded)
        x = gb.add(a, vals.const_int(1), "x")
        gb.br(join)
        IRBuilder(other).br(join)
        IRBuilder(join).ret(a)

        analysis = FunctionAnalysis(function)
        assert analysis.branch_predicates == [p]
        # plain dominance: the guarded def does not dominate the join
        assert not analysis.domtree.dominates(guarded, join)
        # predicated on p=True the branch folds to the guarded edge
        true_tree = analysis.predicated({p: True})
        assert true_tree.dominates(guarded, join)
        assert true_tree.valid_use((guarded, 0), join, 0)
        # ... and on p=False the def is unreachable, the use is not
        false_tree = analysis.predicated({p: False})
        assert not false_tree.is_reachable(guarded)
        assert not false_tree.valid_use((guarded, 0), join, 0)
        # trees are cached per assignment
        assert analysis.predicated({p: True}) is true_tree


class TestAnalysisCache:
    def test_hit_miss_and_invalidate(self):
        function, _ = _diamond()
        cache = AnalysisCache()
        first = cache.get(function)
        assert cache.get(function) is first
        assert (cache.hits, cache.misses) == (1, 1)

        cache.invalidate(function.name)
        assert cache.invalidations == 1
        assert cache.get(function) is not first
        # invalidating an unknown name is a no-op
        cache.invalidate("no-such-function")
        assert cache.invalidations == 1

    def test_body_mutation_misses(self):
        function, (entry, left, right, join) = _diamond()
        cache = AnalysisCache()
        first = cache.get(function)
        extra = function.append_block("extra")
        IRBuilder(extra).ret(vals.const_int(7))
        assert cache.get(function) is not first

    def test_stats_keys(self):
        cache = AnalysisCache()
        stats = cache.stats()
        assert set(stats) == {"analysis_cache_hits", "analysis_cache_misses",
                              "analysis_cache_invalidations"}
        function, _ = _diamond()
        cache.get(function)
        assert len(cache) == 1
        assert list(cache) == [function.name]
