"""Sanitizer tests: raise/record modes, rollback divergence detection,
stats counters, and the headline guarantee — sanitize on/off makes
bit-identical merge decisions."""

import pytest

from repro.analysis import AnalysisError, Sanitizer, make_sanitizer
from repro.core import apply_merge, merge_functions
from repro.core.engine import MergeEngine
from repro.evaluation import compile_module
from repro.ir import IRBuilder, Module
from repro.ir import types as ty
from repro.ir import values as vals
from repro.ir.callgraph import CallGraph
from repro.workloads.mibench import build_mibench_benchmark
from tests.helpers import make_binary_chain_function


def _simple_module(constant=1, name="f"):
    module = Module()
    function = module.create_function(
        name, ty.function_type(ty.I32, [ty.I32]), arg_names=["x"])
    entry = function.append_block("entry")
    builder = IRBuilder(entry)
    builder.ret(builder.add(function.arguments[0],
                            vals.const_int(constant)))
    return module


def _broken_module():
    """Module with a cross-block use-before-def."""
    module = Module()
    function = module.create_function(
        "bad", ty.function_type(ty.I32, [ty.I32]), arg_names=["x"])
    entry = function.append_block("entry")
    left = function.append_block("left")
    right = function.append_block("right")
    join = function.append_block("join")
    eb = IRBuilder(entry)
    cond = eb.icmp("sgt", function.arguments[0], vals.const_int(0))
    eb.cond_br(cond, left, right)
    lb = IRBuilder(left)
    lv = lb.add(function.arguments[0], vals.const_int(1), "lv")
    lb.br(join)
    IRBuilder(right).br(join)
    IRBuilder(join).ret(lv)  # lv does not dominate join
    return module


class TestModes:
    def test_make_sanitizer(self):
        assert make_sanitizer(False) is None
        sanitizer = make_sanitizer(True)
        assert isinstance(sanitizer, Sanitizer)
        assert sanitizer.mode == "raise"
        assert make_sanitizer(True, mode="record").mode == "record"

    def test_raise_mode_raises_on_violation(self):
        sanitizer = Sanitizer()
        with pytest.raises(AnalysisError) as excinfo:
            sanitizer.after_run(_broken_module())
        assert "use-before-def" in str(excinfo.value)
        assert sanitizer.runs == 1
        assert sanitizer.violations >= 1

    def test_record_mode_counts_without_raising(self):
        sanitizer = Sanitizer(mode="record")
        sanitizer.after_run(_broken_module())
        sanitizer.after_run(_simple_module())
        assert sanitizer.runs == 2
        assert sanitizer.violations >= 1
        assert sanitizer.recorded  # the diagnostics were kept
        assert all(d.severity == "error" for d in sanitizer.recorded)

    def test_clean_module_counts_a_run(self):
        sanitizer = Sanitizer()
        sanitizer.after_run(_simple_module())
        assert (sanitizer.runs, sanitizer.violations) == (1, 0)
        assert sanitizer.wall_seconds >= 0.0

    def test_stats_keys(self):
        sanitizer = Sanitizer()
        sanitizer.after_run(_simple_module())
        stats = sanitizer.stats()
        assert stats["sanitize_runs"] == 1
        assert stats["sanitize_violations"] == 0
        assert stats["sanitize_wall_seconds"] >= 0.0
        assert "analysis_cache_hits" in stats


class TestAfterCommit:
    def test_clean_commit_passes(self):
        module = Module()
        f1 = make_binary_chain_function(module, "f1", ["add", "mul", "sub"])
        f2 = make_binary_chain_function(module, "f2", ["add", "xor", "sub"])
        graph = CallGraph(module)
        result = merge_functions(f1, f2)
        applied = apply_merge(module, result, call_graph=graph)
        sanitizer = Sanitizer()
        sanitizer.after_commit(module, result, applied, graph)
        assert (sanitizer.runs, sanitizer.violations) == (1, 0)

    def test_tampered_commit_raises(self):
        module = Module()
        f1 = make_binary_chain_function(module, "f1", ["add", "mul", "sub"],
                                        linkage="external")
        f2 = make_binary_chain_function(module, "f2", ["add", "xor", "sub"],
                                        linkage="external")
        graph = CallGraph(module)
        result = merge_functions(f1, f2)
        applied = apply_merge(module, result, call_graph=graph)
        thunk = module.get_function(applied.function1)
        thunk.append_block("extra")  # empty block: verifier + lint violation
        sanitizer = Sanitizer()
        with pytest.raises(AnalysisError):
            sanitizer.after_commit(module, result, applied, graph)
        assert sanitizer.violations >= 1


class TestAfterRollback:
    def test_identical_modules_pass(self):
        module = _simple_module(constant=7)
        shadow = _simple_module(constant=7)
        sanitizer = Sanitizer()
        sanitizer.after_rollback(module, shadow, ["f"])
        assert (sanitizer.runs, sanitizer.violations) == (1, 0)

    def test_divergent_body_is_flagged(self):
        module = _simple_module(constant=7)
        shadow = _simple_module(constant=8)
        sanitizer = Sanitizer(mode="record")
        sanitizer.after_rollback(module, shadow, ["f"])
        assert sanitizer.violations >= 1
        assert any(d.rule == "sanitizer.rollback-divergence"
                   for d in sanitizer.recorded)

    def test_missing_function_is_flagged(self):
        module = _simple_module(name="f")
        shadow = _simple_module(name="f")
        shadow.create_function("ghost", ty.function_type(ty.I32, []))
        sanitizer = Sanitizer(mode="record")
        sanitizer.after_rollback(module, shadow, ["f", "ghost"])
        assert any(d.rule == "sanitizer.rollback-divergence"
                   for d in sanitizer.recorded)


class TestEngineIntegration:
    def test_env_flag_enables_sanitizer(self, monkeypatch):
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        assert MergeEngine().sanitizer is not None
        monkeypatch.setenv("REPRO_SANITIZE", "0")
        assert MergeEngine().sanitizer is None
        monkeypatch.delenv("REPRO_SANITIZE")
        assert MergeEngine().sanitizer is None
        # explicit argument wins over the environment
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        assert MergeEngine(sanitize=False).sanitizer is None

    def test_injected_sanitizer_is_used(self):
        shared = Sanitizer(mode="record")
        engine = MergeEngine(sanitizer=shared)
        assert engine.sanitizer is shared

    def test_decisions_are_bit_identical_with_sanitize_on(self):
        def run(sanitize):
            module = build_mibench_benchmark("gsm").module
            return compile_module(module, "fmsa", threshold=1,
                                  sanitize=sanitize)

        plain = run(False)
        checked = run(True)
        assert plain.merge_count >= 1  # parity must be non-trivial
        assert plain.merge_report.decision_keys() \
            == checked.merge_report.decision_keys()
        assert plain.size_after == checked.size_after
        assert plain.merge_count == checked.merge_count

        stats = checked.merge_report.scheduler_stats
        assert stats["sanitize_runs"] > 0
        assert stats["sanitize_violations"] == 0
        assert "sanitize_runs" not in (plain.merge_report.scheduler_stats
                                       or {})
