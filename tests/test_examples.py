"""Smoke tests that run the example scripts end-to-end."""

import os
import subprocess
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), os.pardir, "examples")
SRC_DIR = os.path.join(os.path.dirname(__file__), os.pardir, "src")


def _run_example(name, *args, timeout=240):
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC_DIR + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.run(
        [sys.executable, os.path.join(EXAMPLES_DIR, name), *args],
        capture_output=True, text=True, timeout=timeout, env=env)


class TestExamples:
    def test_quickstart(self):
        proc = _run_example("quickstart.py")
        assert proc.returncode == 0, proc.stderr
        assert "profitable" in proc.stdout
        assert "smaller" in proc.stdout
        assert "MISMATCH" not in proc.stdout

    def test_sphinx_case_study(self):
        proc = _run_example("sphinx_case_study.py")
        assert proc.returncode == 0, proc.stderr
        assert "func_id" in proc.stdout
        assert "list linked correctly: True" in proc.stdout

    def test_libquantum_case_study(self):
        proc = _run_example("libquantum_case_study.py")
        assert proc.returncode == 0, proc.stderr
        assert "MISMATCH" not in proc.stdout
        assert "profitable = True" in proc.stdout

    def test_rijndael_case_study(self):
        proc = _run_example("rijndael_case_study.py")
        assert proc.returncode == 0, proc.stderr
        assert "Identical merging:  0 merges" in proc.stdout
        assert "execution check (checksums + final state): OK" in proc.stdout

    @pytest.mark.slow
    def test_reproduce_paper_subset(self):
        proc = _run_example("reproduce_paper.py", "--benchmarks",
                            "462.libquantum", "470.lbm", timeout=600)
        assert proc.returncode == 0, proc.stderr
        assert "Figure 10" in proc.stdout
        assert "Figure 13" in proc.stdout
